//! JSON-Lines event export and replay.
//!
//! Every event becomes one flat JSON object per line, e.g.
//!
//! ```json
//! {"seq":17,"t":0.0421,"event":"ComparisonEmitted","a":3,"b":9,"weight":2}
//! ```
//!
//! `seq` is the write order, `t` the receive-time seconds since observer
//! creation. Events carrying their own pipeline time (`MatchConfirmed`,
//! `PhaseTiming`) keep it in their payload — for virtual-time (simulator)
//! runs those payload times are the meaningful ones.
//!
//! The format is intentionally flat (no nesting, no arrays) so it can be
//! parsed by the bundled minimal reader and by one `json.loads` per line in
//! `scripts/plot_experiments.py`.

use std::fmt::Write as _;
use std::fs::{self, File};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

use parking_lot::Mutex;
use pier_types::{Comparison, GroundTruth, MatchLedger, ProfileId, ProgressTrajectory};

use crate::{DeadLetterReason, Event, Phase, PipelineObserver, WorkerRole};

/// An observer that appends every event to a JSON-Lines file.
///
/// Writes are buffered and serialized behind one mutex, so lines never
/// interleave even when multiple pipeline threads emit concurrently. The
/// buffer is flushed on [`JsonlObserver::flush`] and on drop.
///
/// Observer hooks cannot fail, so a write error (disk full, revoked
/// permissions) cannot surface where it happens — instead the *first*
/// error is retained and returned by the next [`flush`] or by
/// [`finish`]; an unflushed error still pending at drop is reported on
/// stderr so a truncated export is never silent.
///
/// [`flush`]: JsonlObserver::flush
/// [`finish`]: JsonlObserver::finish
pub struct JsonlObserver {
    start: Instant,
    path: PathBuf,
    inner: Mutex<Inner>,
}

struct Inner {
    writer: BufWriter<File>,
    seq: u64,
    line: String,
    /// First write error, held (kind + message) until a caller collects
    /// it via `flush`/`finish`.
    error: Option<(io::ErrorKind, String)>,
}

impl Inner {
    fn record_error(&mut self, e: &io::Error) {
        if self.error.is_none() {
            self.error = Some((e.kind(), e.to_string()));
        }
    }
}

impl JsonlObserver {
    /// Creates the conventional per-run export
    /// `target/experiments/<run_id>/events.jsonl` (directories are created
    /// as needed).
    ///
    /// The run id becomes a single path component: ids containing path
    /// separators or `..` are rejected so a run can never write outside
    /// `target/experiments/`. Use [`JsonlObserver::create`] for arbitrary
    /// paths.
    pub fn for_run(run_id: &str) -> io::Result<Self> {
        if run_id.is_empty() || run_id == ".." || run_id.contains(['/', '\\']) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("run id {run_id:?} must be a single path component"),
            ));
        }
        let dir = Path::new("target").join("experiments").join(run_id);
        fs::create_dir_all(&dir)?;
        Self::create(dir.join("events.jsonl"))
    }

    /// Creates (truncating) an export at an explicit path.
    pub fn create(path: impl Into<PathBuf>) -> io::Result<Self> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let file = File::create(&path)?;
        Ok(JsonlObserver {
            start: Instant::now(),
            path,
            inner: Mutex::new(Inner {
                writer: BufWriter::new(file),
                seq: 0,
                line: String::with_capacity(160),
                error: None,
            }),
        })
    }

    /// Where the events are being written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Flushes buffered lines to disk.
    ///
    /// # Errors
    /// Returns the first write error recorded since the last `flush`
    /// (hooks cannot fail, so errors queue here), or the flush's own
    /// failure. The pending error is consumed: a later `flush` reports
    /// only what failed after this one.
    pub fn flush(&self) -> io::Result<()> {
        let mut inner = self.inner.lock();
        if let Err(e) = inner.writer.flush() {
            inner.record_error(&e);
        }
        match inner.error.take() {
            Some((kind, msg)) => Err(io::Error::new(kind, msg)),
            None => Ok(()),
        }
    }

    /// Flushes and closes the export, returning its path — the checked
    /// alternative to dropping the observer.
    ///
    /// # Errors
    /// Same contract as [`JsonlObserver::flush`]: any write error from
    /// the run surfaces here instead of disappearing with the observer.
    pub fn finish(self) -> io::Result<PathBuf> {
        self.flush()?;
        Ok(self.path.clone())
    }

    /// Events written so far.
    pub fn events_written(&self) -> u64 {
        self.inner.lock().seq
    }
}

impl JsonlObserver {
    fn write_event(&self, shard: Option<u16>, worker: Option<u16>, event: &Event) {
        let t = self.start.elapsed().as_secs_f64();
        let mut inner = self.inner.lock();
        inner.seq += 1;
        let seq = inner.seq;
        let line = std::mem::take(&mut inner.line);
        let mut line = write_line(line, seq, t, shard, worker, event);
        line.push('\n');
        // Observers cannot fail, so an I/O error (disk full) cannot
        // propagate from here — the line is dropped and the first error is
        // retained for the next `flush`/`finish` to return.
        if let Err(e) = inner.writer.write_all(line.as_bytes()) {
            inner.record_error(&e);
        }
        line.clear();
        inner.line = line;
    }
}

impl PipelineObserver for JsonlObserver {
    fn on_event(&self, event: &Event) {
        self.write_event(None, None, event);
    }

    fn on_shard_event(&self, shard: u16, event: &Event) {
        self.write_event(Some(shard), None, event);
    }

    fn on_worker_event(&self, worker: u16, event: &Event) {
        self.write_event(None, Some(worker), event);
    }
}

impl Drop for JsonlObserver {
    fn drop(&mut self) {
        // A run killed mid-stream must still land its buffered tail; if it
        // (or an earlier hook) failed, say so — a silently truncated
        // events.jsonl costs an afternoon of confused replaying.
        if let Err(e) = self.flush() {
            eprintln!(
                "pier-observe: events.jsonl export {} lost data: {e}",
                self.path.display()
            );
        }
    }
}

/// Serializes one event into `buf` (no trailing newline).
fn write_line(
    mut buf: String,
    seq: u64,
    t: f64,
    shard: Option<u16>,
    worker: Option<u16>,
    event: &Event,
) -> String {
    let _ = write!(buf, "{{\"seq\":{seq},\"t\":{}", json_f64(t));
    if let Some(shard) = shard {
        let _ = write!(buf, ",\"shard\":{shard}");
    }
    if let Some(worker) = worker {
        let _ = write!(buf, ",\"worker\":{worker}");
    }
    match *event {
        Event::IncrementIngested {
            seq: inc_seq,
            profiles,
        } => {
            let _ = write!(
                buf,
                ",\"event\":\"IncrementIngested\",\"inc\":{inc_seq},\"profiles\":{profiles}"
            );
        }
        Event::BlockBuilt { block } => {
            let _ = write!(buf, ",\"event\":\"BlockBuilt\",\"block\":{block}");
        }
        Event::BlockPurged { block, size } => {
            let _ = write!(
                buf,
                ",\"event\":\"BlockPurged\",\"block\":{block},\"size\":{size}"
            );
        }
        Event::BlockGhosted {
            profile,
            kept,
            dropped,
        } => {
            let _ = write!(
                buf,
                ",\"event\":\"BlockGhosted\",\"profile\":{},\"kept\":{kept},\"dropped\":{dropped}",
                profile.0
            );
        }
        Event::ComparisonEmitted { cmp, weight } => {
            let _ = write!(
                buf,
                ",\"event\":\"ComparisonEmitted\",\"a\":{},\"b\":{},\"weight\":{}",
                cmp.a.0,
                cmp.b.0,
                json_f64(weight)
            );
        }
        Event::CfFiltered { cmp } => {
            let _ = write!(
                buf,
                ",\"event\":\"CfFiltered\",\"a\":{},\"b\":{}",
                cmp.a.0, cmp.b.0
            );
        }
        Event::AdaptiveKChanged { old_k, new_k } => {
            let _ = write!(
                buf,
                ",\"event\":\"AdaptiveKChanged\",\"old_k\":{old_k},\"new_k\":{new_k}"
            );
        }
        Event::MatchConfirmed {
            cmp,
            similarity,
            at_secs,
        } => {
            let _ = write!(
                buf,
                ",\"event\":\"MatchConfirmed\",\"a\":{},\"b\":{},\"similarity\":{},\"at_secs\":{}",
                cmp.a.0,
                cmp.b.0,
                json_f64(similarity),
                json_f64(at_secs)
            );
        }
        Event::PhaseTiming { phase, secs } => {
            let _ = write!(
                buf,
                ",\"event\":\"PhaseTiming\",\"phase\":\"{}\",\"secs\":{}",
                phase.name(),
                json_f64(secs)
            );
        }
        Event::WorkerRestarted {
            role,
            lane,
            recovery_secs,
        } => {
            let _ = write!(
                buf,
                ",\"event\":\"WorkerRestarted\",\"role\":\"{}\",\"lane\":{lane},\"recovery_secs\":{}",
                role.name(),
                json_f64(recovery_secs)
            );
        }
        Event::DeadLettered { reason, a, b } => {
            let _ = write!(
                buf,
                ",\"event\":\"DeadLettered\",\"reason\":\"{}\",\"a\":{},\"b\":{}",
                reason.name(),
                a.0,
                b.0
            );
        }
        Event::ComparisonsShed { count } => {
            let _ = write!(buf, ",\"event\":\"ComparisonsShed\",\"count\":{count}");
        }
    }
    buf.push('}');
    buf
}

/// Formats an `f64` as a JSON number (non-finite values, which no event
/// legitimately produces, degrade to 0).
fn json_f64(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        0.0
    }
}

/// One parsed line of an `events.jsonl` file.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedEvent {
    /// Write-order sequence number (1-based).
    pub seq: u64,
    /// Receive-time seconds since observer creation.
    pub t: f64,
    /// The stage-A shard the event was attributed to, if the emitting
    /// handle was shard-tagged (see `Observer::for_shard`).
    pub shard: Option<u16>,
    /// The stage-B match worker the event was attributed to, if the
    /// emitting handle was worker-tagged (see `Observer::for_worker`).
    pub worker: Option<u16>,
    /// The event payload.
    pub event: Event,
}

/// Reads back an `events.jsonl` file written by [`JsonlObserver`].
///
/// # Errors
/// Returns an I/O error if the file cannot be read, or
/// `InvalidData` for lines that do not parse as events.
pub fn read_events(path: impl AsRef<Path>) -> io::Result<Vec<TimedEvent>> {
    let reader = BufReader::new(File::open(path)?);
    let mut events = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let ev = parse_line(&line).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("events.jsonl line {}: unparseable event", lineno + 1),
            )
        })?;
        events.push(ev);
    }
    Ok(events)
}

/// Replays the pair-completeness trajectory of an exported run: every
/// `ComparisonEmitted` event is credited against `ground_truth` (each
/// ground-truth match counted once), timestamped with the export's
/// receive time.
pub fn replay_trajectory(events: &[TimedEvent], ground_truth: &GroundTruth) -> ProgressTrajectory {
    let mut trajectory = ProgressTrajectory::for_ground_truth(ground_truth);
    let mut ledger = MatchLedger::new();
    let mut last_t = 0.0f64;
    for ev in events {
        if let Event::ComparisonEmitted { cmp, .. } = ev.event {
            // Receive times are monotone per observer; clamp defensively
            // for hand-edited files.
            last_t = last_t.max(ev.t);
            trajectory.record(last_t, ledger.credit(ground_truth, cmp));
        }
    }
    trajectory.finish(last_t);
    trajectory
}

/// Counts distinct confirmed matches in an exported run — the replayed
/// analogue of `RuntimeReport::matches.len()`.
pub fn replay_match_count(events: &[TimedEvent]) -> usize {
    let mut seen = std::collections::HashSet::new();
    events
        .iter()
        .filter(|ev| match ev.event {
            Event::MatchConfirmed { cmp, .. } => seen.insert(cmp),
            _ => false,
        })
        .count()
}

// ---------------------------------------------------------------------
// Minimal flat-JSON parsing (exactly the subset `write_line` produces).
// ---------------------------------------------------------------------

fn parse_line(line: &str) -> Option<TimedEvent> {
    let fields = parse_flat_object(line)?;
    let num = |k: &str| -> Option<f64> {
        match fields.iter().find(|(key, _)| key == k)?.1 {
            JsonValue::Num(n) => Some(n),
            _ => None,
        }
    };
    let text = |k: &str| -> Option<&str> {
        match &fields.iter().find(|(key, _)| key == k)?.1 {
            JsonValue::Str(s) => Some(s.as_str()),
            _ => None,
        }
    };
    let pair = || -> Option<Comparison> {
        Some(Comparison::new(
            ProfileId(num("a")? as u32),
            ProfileId(num("b")? as u32),
        ))
    };
    let event = match text("event")? {
        "IncrementIngested" => Event::IncrementIngested {
            seq: num("inc")? as u64,
            profiles: num("profiles")? as usize,
        },
        "BlockBuilt" => Event::BlockBuilt {
            block: num("block")? as u32,
        },
        "BlockPurged" => Event::BlockPurged {
            block: num("block")? as u32,
            size: num("size")? as usize,
        },
        "BlockGhosted" => Event::BlockGhosted {
            profile: ProfileId(num("profile")? as u32),
            kept: num("kept")? as usize,
            dropped: num("dropped")? as usize,
        },
        "ComparisonEmitted" => Event::ComparisonEmitted {
            cmp: pair()?,
            weight: num("weight")?,
        },
        "CfFiltered" => Event::CfFiltered { cmp: pair()? },
        "AdaptiveKChanged" => Event::AdaptiveKChanged {
            old_k: num("old_k")? as usize,
            new_k: num("new_k")? as usize,
        },
        "MatchConfirmed" => Event::MatchConfirmed {
            cmp: pair()?,
            similarity: num("similarity")?,
            at_secs: num("at_secs")?,
        },
        "PhaseTiming" => Event::PhaseTiming {
            phase: Phase::from_name(text("phase")?)?,
            secs: num("secs")?,
        },
        "WorkerRestarted" => Event::WorkerRestarted {
            role: WorkerRole::from_name(text("role")?)?,
            lane: num("lane")? as u16,
            recovery_secs: num("recovery_secs")?,
        },
        "DeadLettered" => Event::DeadLettered {
            reason: DeadLetterReason::from_name(text("reason")?)?,
            a: ProfileId(num("a")? as u32),
            b: ProfileId(num("b")? as u32),
        },
        "ComparisonsShed" => Event::ComparisonsShed {
            count: num("count")? as usize,
        },
        _ => return None,
    };
    Some(TimedEvent {
        seq: num("seq")? as u64,
        t: num("t")?,
        shard: num("shard").map(|s| s as u16),
        worker: num("worker").map(|w| w as u16),
        event,
    })
}

enum JsonValue {
    Num(f64),
    Str(String),
}

/// Parses `{"key":value,...}` where values are numbers or simple strings
/// (escapes `\"`, `\\`, `\n`, `\t`, `\r` supported). Returns `None` on any
/// deviation — strict enough for our own output.
fn parse_flat_object(line: &str) -> Option<Vec<(String, JsonValue)>> {
    let mut chars = line.trim().chars().peekable();
    if chars.next()? != '{' {
        return None;
    }
    let mut fields = Vec::new();
    loop {
        match chars.peek()? {
            '}' => {
                chars.next();
                break;
            }
            ',' => {
                chars.next();
            }
            _ => {}
        }
        let key = parse_string(&mut chars)?;
        if chars.next()? != ':' {
            return None;
        }
        let value = match chars.peek()? {
            '"' => JsonValue::Str(parse_string(&mut chars)?),
            _ => {
                let mut num = String::new();
                while let Some(&c) = chars.peek() {
                    if c == ',' || c == '}' {
                        break;
                    }
                    num.push(c);
                    chars.next();
                }
                JsonValue::Num(num.trim().parse().ok()?)
            }
        };
        fields.push((key, value));
    }
    Some(fields)
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<String> {
    if chars.next()? != '"' {
        return None;
    }
    let mut out = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => out.push(match chars.next()? {
                'n' => '\n',
                't' => '\t',
                'r' => '\r',
                c => c, // \" and \\ fall through as themselves
            }),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Observer;

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("pier-observe-{}-{name}", std::process::id()))
    }

    fn all_event_kinds() -> Vec<Event> {
        let cmp = Comparison::new(ProfileId(4), ProfileId(11));
        vec![
            Event::IncrementIngested {
                seq: 1,
                profiles: 20,
            },
            Event::BlockBuilt { block: 7 },
            Event::BlockPurged { block: 7, size: 64 },
            Event::BlockGhosted {
                profile: ProfileId(4),
                kept: 3,
                dropped: 2,
            },
            Event::ComparisonEmitted { cmp, weight: 2.5 },
            Event::CfFiltered { cmp },
            Event::AdaptiveKChanged {
                old_k: 64,
                new_k: 83,
            },
            Event::MatchConfirmed {
                cmp,
                similarity: 0.875,
                at_secs: 1.25,
            },
            Event::PhaseTiming {
                phase: Phase::Prune,
                secs: 0.003,
            },
            Event::WorkerRestarted {
                role: WorkerRole::Shard,
                lane: 2,
                recovery_secs: 0.0125,
            },
            Event::DeadLettered {
                reason: DeadLetterReason::PoisonedProfile,
                a: ProfileId(4),
                b: ProfileId(4),
            },
            Event::ComparisonsShed { count: 17 },
        ]
    }

    #[test]
    fn every_event_kind_round_trips() {
        let path = temp_path("roundtrip.jsonl");
        let events = all_event_kinds();
        {
            let obs = JsonlObserver::create(&path).unwrap();
            for e in &events {
                obs.on_event(e);
            }
            assert_eq!(obs.events_written(), events.len() as u64);
        } // drop flushes
        let read = read_events(&path).unwrap();
        assert_eq!(read.len(), events.len());
        for (i, (got, want)) in read.iter().zip(&events).enumerate() {
            assert_eq!(got.seq, i as u64 + 1);
            assert!(got.t >= 0.0);
            assert_eq!(&got.event, want, "event {i}");
        }
        // seq and t are monotone.
        assert!(read
            .windows(2)
            .all(|w| w[0].seq < w[1].seq && w[0].t <= w[1].t));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn for_run_creates_the_conventional_layout() {
        let run_id = format!("jsonl-test-{}", std::process::id());
        let obs = JsonlObserver::for_run(&run_id).unwrap();
        assert!(obs
            .path()
            .ends_with(Path::new("experiments").join(&run_id).join("events.jsonl")));
        obs.on_event(&Event::BlockBuilt { block: 1 });
        obs.flush().unwrap();
        assert_eq!(read_events(obs.path()).unwrap().len(), 1);
        let dir = obs.path().parent().unwrap().to_path_buf();
        drop(obs);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn replay_rebuilds_the_pc_trajectory() {
        let gt =
            GroundTruth::from_pairs([(ProfileId(0), ProfileId(1)), (ProfileId(2), ProfileId(3))]);
        let path = temp_path("replay.jsonl");
        {
            let obs = JsonlObserver::create(&path).unwrap();
            let emit = |a: u32, b: u32| {
                obs.on_event(&Event::ComparisonEmitted {
                    cmp: Comparison::new(ProfileId(a), ProfileId(b)),
                    weight: 1.0,
                })
            };
            emit(0, 1); // match
            emit(0, 2); // miss
            emit(0, 1); // repeat — must not double-credit
            emit(2, 3); // match
        }
        let events = read_events(&path).unwrap();
        let t = replay_trajectory(&events, &gt);
        assert_eq!(t.matches(), 2);
        assert_eq!(t.comparisons(), 4);
        assert!((t.pc() - 1.0).abs() < 1e-12);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn replay_match_count_deduplicates() {
        let cmp = Comparison::new(ProfileId(0), ProfileId(1));
        let mk = |event| TimedEvent {
            seq: 0,
            t: 0.0,
            shard: None,
            worker: None,
            event,
        };
        let events = vec![
            mk(Event::MatchConfirmed {
                cmp,
                similarity: 1.0,
                at_secs: 0.0,
            }),
            mk(Event::MatchConfirmed {
                cmp,
                similarity: 1.0,
                at_secs: 0.1,
            }),
            mk(Event::BlockBuilt { block: 0 }),
        ];
        assert_eq!(replay_match_count(&events), 1);
    }

    #[test]
    fn shard_tag_round_trips() {
        let path = temp_path("shard.jsonl");
        {
            let obs = JsonlObserver::create(&path).unwrap();
            obs.on_event(&Event::BlockBuilt { block: 1 });
            obs.on_shard_event(3, &Event::BlockBuilt { block: 2 });
            let handle = Observer::from_sink(obs).for_shard(5);
            handle.emit(|| Event::CfFiltered {
                cmp: Comparison::new(ProfileId(0), ProfileId(1)),
            });
        } // drop flushes
        let read = read_events(&path).unwrap();
        assert_eq!(read.len(), 3);
        assert_eq!(read[0].shard, None);
        assert_eq!(read[1].shard, Some(3));
        assert_eq!(read[1].event, Event::BlockBuilt { block: 2 });
        assert_eq!(read[2].shard, Some(5));
        assert!(read.iter().all(|e| e.worker.is_none()));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn worker_tag_round_trips() {
        let path = temp_path("worker.jsonl");
        {
            let obs = JsonlObserver::create(&path).unwrap();
            obs.on_worker_event(
                2,
                &Event::PhaseTiming {
                    phase: Phase::Classify,
                    secs: 0.004,
                },
            );
            let handle = Observer::from_sink(obs).for_worker(7);
            handle.emit(|| Event::PhaseTiming {
                phase: Phase::Classify,
                secs: 0.001,
            });
        } // drop flushes
        let read = read_events(&path).unwrap();
        assert_eq!(read.len(), 2);
        assert_eq!(read[0].worker, Some(2));
        assert_eq!(read[0].shard, None);
        assert_eq!(
            read[0].event,
            Event::PhaseTiming {
                phase: Phase::Classify,
                secs: 0.004
            }
        );
        assert_eq!(read[1].worker, Some(7));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn unparseable_line_is_invalid_data() {
        let path = temp_path("bad.jsonl");
        fs::write(&path, "{\"seq\":1,\"t\":0,\"event\":\"NoSuchEvent\"}\n").unwrap();
        let err = read_events(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn observer_handle_integration() {
        let path = temp_path("handle.jsonl");
        let obs = Observer::from_sink(JsonlObserver::create(&path).unwrap());
        obs.emit(|| Event::BlockBuilt { block: 3 });
        drop(obs); // flush via Drop
        assert_eq!(read_events(&path).unwrap().len(), 1);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn finish_flushes_and_returns_the_path() {
        let path = temp_path("finish.jsonl");
        let obs = JsonlObserver::create(&path).unwrap();
        obs.on_event(&Event::BlockBuilt { block: 1 });
        let finished = obs.finish().unwrap();
        assert_eq!(finished, path);
        assert_eq!(read_events(&path).unwrap().len(), 1);
        let _ = fs::remove_file(&path);
    }

    /// `/dev/full` accepts opens and fails every write with ENOSPC — the
    /// canonical disk-full simulation.
    #[cfg(target_os = "linux")]
    fn dev_full_observer() -> Option<JsonlObserver> {
        if !Path::new("/dev/full").exists() {
            return None; // minimal container without device nodes
        }
        JsonlObserver::create("/dev/full").ok()
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn write_errors_are_retained_and_surface_on_flush() {
        let Some(obs) = dev_full_observer() else {
            return;
        };
        // Push well past the BufWriter's buffer so write_all hits the
        // device; the hook itself must absorb the failure.
        for i in 0..10_000 {
            obs.on_event(&Event::BlockBuilt { block: i });
        }
        let err = obs.flush().expect_err("ENOSPC must surface");
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        // The error was consumed; only failures after it resurface (and
        // the still-buffered tail fails again right here).
        assert!(obs.events_written() == 10_000);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn finish_reports_write_errors() {
        let Some(obs) = dev_full_observer() else {
            return;
        };
        for i in 0..10_000 {
            obs.on_event(&Event::BlockBuilt { block: i });
        }
        assert!(obs.finish().is_err());
    }

    #[test]
    fn for_run_rejects_path_escapes() {
        for bad in ["", "..", "a/b", "..\\up"] {
            match JsonlObserver::for_run(bad) {
                Err(err) => assert_eq!(err.kind(), io::ErrorKind::InvalidInput, "{bad:?}"),
                Ok(o) => panic!("{bad:?} accepted, writes to {}", o.path().display()),
            }
        }
    }
}
