//! Concurrency pinning for `StatsObserver`: per-worker merging and the
//! live PC trajectory must produce the same totals whether events arrive
//! from one thread or from many `Observer::for_worker` handles racing.

use std::sync::Arc;
use std::thread;

use pier_observe::{Event, Observer, Phase, StatsObserver, WorkerSnapshot};
use pier_types::{Comparison, GroundTruth, ProfileId};

const WORKERS: u16 = 8;
const CHUNKS_PER_WORKER: u64 = 200;

fn cmp(a: u32, b: u32) -> Comparison {
    Comparison::new(ProfileId(a), ProfileId(b))
}

/// The event stream one worker produces: classify timings, confirmed
/// matches, and emitted comparisons (the trajectory's input).
fn worker_events(worker: u16) -> Vec<Event> {
    let mut events = Vec::new();
    for chunk in 0..CHUNKS_PER_WORKER {
        events.push(Event::PhaseTiming {
            phase: Phase::Classify,
            secs: 1e-6 * (worker as f64 + 1.0),
        });
        // Each worker confirms the matches of its own ground-truth slice.
        let a = worker as u32 * 1000 + chunk as u32;
        events.push(Event::MatchConfirmed {
            cmp: cmp(a, a + 1),
            similarity: 0.9,
            at_secs: 0.0,
        });
        events.push(Event::ComparisonEmitted {
            cmp: cmp(a, a + 1),
            weight: 1.0,
        });
    }
    events
}

/// Ground truth containing every pair the workers will emit.
fn ground_truth() -> GroundTruth {
    GroundTruth::from_pairs((0..WORKERS).flat_map(|w| {
        (0..CHUNKS_PER_WORKER).map(move |c| {
            let a = w as u32 * 1000 + c as u32;
            (ProfileId(a), ProfileId(a + 1))
        })
    }))
}

/// Replays every worker's stream sequentially through one observer — the
/// reference the concurrent run must match.
fn sequential_reference() -> (Vec<WorkerSnapshot>, u64, u64, f64) {
    let stats = Arc::new(StatsObserver::with_ground_truth(ground_truth()));
    let obs = Observer::new(stats.clone() as Arc<_>);
    for worker in 0..WORKERS {
        let handle = obs.for_worker(worker);
        for event in worker_events(worker) {
            handle.emit(|| event);
        }
    }
    let snap = stats.snapshot();
    (
        snap.workers.clone(),
        snap.matches_confirmed,
        snap.comparisons_emitted,
        snap.pc.unwrap(),
    )
}

#[test]
fn concurrent_worker_observers_merge_to_the_sequential_totals() {
    let stats = Arc::new(StatsObserver::with_ground_truth(ground_truth()));
    let obs = Observer::new(stats.clone() as Arc<_>);

    thread::scope(|scope| {
        for worker in 0..WORKERS {
            let handle = obs.for_worker(worker);
            scope.spawn(move || {
                for event in worker_events(worker) {
                    handle.emit(|| event);
                }
            });
        }
    });

    let snap = stats.snapshot();
    let (ref_workers, ref_matches, ref_comparisons, ref_pc) = sequential_reference();

    // Global totals: every worker's events landed exactly once.
    let total_events = WORKERS as u64 * CHUNKS_PER_WORKER;
    assert_eq!(snap.matches_confirmed, total_events);
    assert_eq!(snap.comparisons_emitted, total_events);
    assert_eq!(snap.matches_confirmed, ref_matches);
    assert_eq!(snap.comparisons_emitted, ref_comparisons);

    // Worker-tagged classify timings stay out of the global histogram.
    assert_eq!(snap.phases[Phase::Classify.index()].count, 0);

    // Per-worker merging: same chunk counts, seconds, and match counts as
    // the sequential run, worker by worker.
    assert_eq!(snap.workers.len(), WORKERS as usize);
    assert_eq!(snap.workers.len(), ref_workers.len());
    for (got, want) in snap.workers.iter().zip(&ref_workers) {
        assert_eq!(got.worker, want.worker);
        assert_eq!(got.classify_chunks, want.classify_chunks);
        assert_eq!(got.matches_confirmed, want.matches_confirmed);
        assert!(
            (got.classify_secs - want.classify_secs).abs() < 1e-9,
            "worker {}: {} vs {}",
            got.worker,
            got.classify_secs,
            want.classify_secs
        );
        assert_eq!(got.classify_chunks, CHUNKS_PER_WORKER);
    }

    // The PC trajectory credited every ground-truth pair exactly once
    // despite concurrent ledger updates.
    assert_eq!(snap.pc, Some(ref_pc));
    assert_eq!(snap.pc, Some(1.0));
    assert_eq!(snap.pc_matches, total_events);
    let trajectory = stats.trajectory().unwrap();
    assert_eq!(trajectory.matches(), total_events);
    assert_eq!(trajectory.comparisons(), total_events);
}

#[test]
fn concurrent_trajectory_timestamps_are_monotone() {
    let gt = ground_truth();
    let stats = Arc::new(StatsObserver::with_ground_truth(gt));
    let obs = Observer::new(stats.clone() as Arc<_>);
    thread::scope(|scope| {
        for worker in 0..WORKERS {
            let handle = obs.for_worker(worker);
            scope.spawn(move || {
                for event in worker_events(worker) {
                    handle.emit(|| event);
                }
            });
        }
    });
    let trajectory = stats.trajectory().unwrap();
    let points = trajectory.points();
    assert!(
        points.windows(2).all(|w| w[0].time <= w[1].time),
        "trajectory timestamps must be monotone under concurrent recording"
    );
    assert!((trajectory.pc() - 1.0).abs() < 1e-12);
}
