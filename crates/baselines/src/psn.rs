//! LS-PSN — Local Schema-agnostic Progressive Sorted Neighborhood.
//!
//! One of the four schema-agnostic progressive methods of \[36\] (§2.4 of the
//! PIER paper): all profiles are laid out in a *sorted position array* —
//! for every distinct token, in lexicographic token order, the profiles
//! containing it — and comparisons are emitted by increasing positional
//! distance (window size `w = 1, 2, ...`). Nearby positions mean shared or
//! lexicographically-close tokens, so small windows are enriched with
//! matches; the "local" variant weighs a pair purely by the window at
//! which it is first encountered.
//!
//! Two variants, per \[36\]:
//! * [`LsPsn`] (*local*): emits pairs by increasing window, each weighed
//!   by the window at which it is first seen.
//! * [`GsPsn`] (*global*): accumulates, across **all** windows up to the
//!   maximum, the weight `Σ (max_window − distance + 1)` per pair, then
//!   emits by descending weight — a better order at a much higher
//!   initialization cost (it materializes every in-window pair upfront).
//!
//! Like PBS/PPS these are batch methods; driven per increment they
//! re-sort from scratch (charged like the other GLOBAL adaptations).
//! Provided as additional baselines beyond the paper's evaluated set.

use std::collections::HashSet;

use pier_blocking::IncrementalBlocker;
use pier_core::ComparisonEmitter;
use pier_types::{Comparison, ProfileId};

/// The LS-PSN emitter.
#[derive(Debug)]
pub struct LsPsn {
    /// Position array: profiles listed under each token, token-sorted.
    positions: Vec<ProfileId>,
    /// Current window size (distance being emitted).
    window: usize,
    /// Cursor within the current window pass.
    cursor: usize,
    /// Largest window to consider; beyond it remaining pairs are dropped
    /// (PSN's inherent recall cut-off).
    pub max_window: usize,
    emitted: HashSet<Comparison>,
    rebuild_cost_multiplier: u64,
    ops: u64,
}

impl LsPsn {
    /// Creates an LS-PSN emitter with the default maximum window of 10.
    pub fn new() -> Self {
        LsPsn {
            positions: Vec::new(),
            window: 1,
            cursor: 0,
            max_window: 10,
            emitted: HashSet::new(),
            rebuild_cost_multiplier: 8,
            ops: 0,
        }
    }

    /// Overrides the maximum window.
    #[must_use]
    pub fn with_max_window(mut self, w: usize) -> Self {
        assert!(w >= 1, "window must be at least 1");
        self.max_window = w;
        self
    }

    /// Rebuilds the sorted position array over all data.
    fn rebuild(&mut self, blocker: &IncrementalBlocker) {
        let collection = blocker.collection();
        // Tokens sorted lexicographically; the dictionary interns in
        // first-seen order, so sort the strings.
        let dict = blocker.dictionary();
        let mut tokens: Vec<(&str, pier_types::TokenId)> = (0..dict.len() as u32)
            .filter_map(|i| {
                let id = pier_types::TokenId(i);
                dict.resolve(id).map(|s| (s, id))
            })
            .collect();
        tokens.sort_unstable();
        self.positions.clear();
        for (_, tid) in tokens {
            if let Some(block) = collection.block(tid.into()) {
                if block.is_purged() {
                    continue;
                }
                self.positions.extend(block.members());
                self.ops += block.len() as u64;
            }
        }
        self.window = 1;
        self.cursor = 0;
    }

    /// Advances to the next candidate pair in window order, if any.
    fn next_pair(&mut self, blocker: &IncrementalBlocker) -> Option<Comparison> {
        let collection = blocker.collection();
        let kind = collection.kind();
        while self.window <= self.max_window {
            while self.cursor + self.window < self.positions.len() {
                let x = self.positions[self.cursor];
                let y = self.positions[self.cursor + self.window];
                self.cursor += 1;
                self.ops += 1;
                if x == y {
                    continue;
                }
                if kind == pier_types::ErKind::CleanClean
                    && collection.source_of(x) == collection.source_of(y)
                {
                    continue;
                }
                let cmp = Comparison::new(x, y);
                if self.emitted.insert(cmp) {
                    return Some(cmp);
                }
            }
            self.window += 1;
            self.cursor = 0;
        }
        None
    }
}

impl Default for LsPsn {
    fn default() -> Self {
        Self::new()
    }
}

impl ComparisonEmitter for LsPsn {
    fn on_increment(&mut self, blocker: &IncrementalBlocker, new_ids: &[ProfileId]) {
        if !new_ids.is_empty() {
            let before = self.ops;
            self.rebuild(blocker);
            self.ops += (self.ops - before) * (self.rebuild_cost_multiplier - 1);
        }
    }

    fn next_batch(&mut self, blocker: &IncrementalBlocker, k: usize) -> Vec<Comparison> {
        let mut batch = Vec::with_capacity(k);
        while batch.len() < k {
            match self.next_pair(blocker) {
                Some(c) => batch.push(c),
                None => break,
            }
        }
        batch
    }

    fn drain_ops(&mut self) -> u64 {
        std::mem::take(&mut self.ops)
    }

    fn has_pending(&self) -> bool {
        self.window <= self.max_window && self.positions.len() > self.window
    }

    fn name(&self) -> String {
        "LS-PSN".to_string()
    }
}

/// Builds the token-sorted position array shared by both PSN variants.
fn build_positions(blocker: &IncrementalBlocker, ops: &mut u64) -> Vec<ProfileId> {
    let collection = blocker.collection();
    let dict = blocker.dictionary();
    let mut tokens: Vec<(&str, pier_types::TokenId)> = (0..dict.len() as u32)
        .filter_map(|i| {
            let id = pier_types::TokenId(i);
            dict.resolve(id).map(|s| (s, id))
        })
        .collect();
    tokens.sort_unstable();
    let mut positions = Vec::new();
    for (_, tid) in tokens {
        if let Some(block) = collection.block(tid.into()) {
            if block.is_purged() {
                continue;
            }
            positions.extend(block.members());
            *ops += block.len() as u64;
        }
    }
    positions
}

/// GS-PSN — the global variant: pair weights aggregated over all windows.
#[derive(Debug)]
pub struct GsPsn {
    /// Descending-weight emission schedule built at (re-)initialization.
    schedule: std::collections::VecDeque<Comparison>,
    /// Largest window considered.
    pub max_window: usize,
    emitted: HashSet<Comparison>,
    rebuild_cost_multiplier: u64,
    ops: u64,
}

impl GsPsn {
    /// Creates a GS-PSN emitter with the default maximum window of 10.
    pub fn new() -> Self {
        GsPsn {
            schedule: std::collections::VecDeque::new(),
            max_window: 10,
            emitted: HashSet::new(),
            rebuild_cost_multiplier: 8,
            ops: 0,
        }
    }

    /// Overrides the maximum window.
    #[must_use]
    pub fn with_max_window(mut self, w: usize) -> Self {
        assert!(w >= 1, "window must be at least 1");
        self.max_window = w;
        self
    }

    fn rebuild(&mut self, blocker: &IncrementalBlocker) {
        let collection = blocker.collection();
        let kind = collection.kind();
        let positions = build_positions(blocker, &mut self.ops);
        let mut weights: std::collections::HashMap<Comparison, u64> =
            std::collections::HashMap::new();
        for w in 1..=self.max_window {
            for i in 0..positions.len().saturating_sub(w) {
                let (x, y) = (positions[i], positions[i + w]);
                self.ops += 1;
                if x == y {
                    continue;
                }
                if kind == pier_types::ErKind::CleanClean
                    && collection.source_of(x) == collection.source_of(y)
                {
                    continue;
                }
                let cmp = Comparison::new(x, y);
                if self.emitted.contains(&cmp) {
                    continue;
                }
                // Closer co-occurrences weigh more.
                *weights.entry(cmp).or_insert(0) += (self.max_window - w + 1) as u64;
            }
        }
        let mut ranked: Vec<(u64, Comparison)> = weights.into_iter().map(|(c, w)| (w, c)).collect();
        // Descending weight, pair id as deterministic tie-break.
        ranked.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        self.ops += ranked.len() as u64;
        self.schedule = ranked.into_iter().map(|(_, c)| c).collect();
    }
}

impl Default for GsPsn {
    fn default() -> Self {
        Self::new()
    }
}

impl ComparisonEmitter for GsPsn {
    fn on_increment(&mut self, blocker: &IncrementalBlocker, new_ids: &[ProfileId]) {
        if !new_ids.is_empty() {
            let before = self.ops;
            self.rebuild(blocker);
            self.ops += (self.ops - before) * (self.rebuild_cost_multiplier - 1);
        }
    }

    fn next_batch(&mut self, _blocker: &IncrementalBlocker, k: usize) -> Vec<Comparison> {
        let mut batch = Vec::with_capacity(k);
        while batch.len() < k {
            let Some(cmp) = self.schedule.pop_front() else {
                break;
            };
            if self.emitted.insert(cmp) {
                self.ops += 1;
                batch.push(cmp);
            }
        }
        batch
    }

    fn drain_ops(&mut self) -> u64 {
        std::mem::take(&mut self.ops)
    }

    fn has_pending(&self) -> bool {
        !self.schedule.is_empty()
    }

    fn name(&self) -> String {
        "GS-PSN".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pier_types::{EntityProfile, ErKind, SourceId};

    fn blocker(texts: &[&str]) -> IncrementalBlocker {
        let mut b = IncrementalBlocker::new(ErKind::Dirty);
        for (i, t) in texts.iter().enumerate() {
            b.process_profile(
                EntityProfile::new(ProfileId(i as u32), SourceId(0)).with("text", *t),
            );
        }
        b
    }

    #[test]
    fn window_one_finds_token_sharing_pairs_first() {
        // p0 and p1 share "match": adjacent under that token -> window 1.
        let b = blocker(&["match alpha", "match beta", "gamma delta"]);
        let mut e = LsPsn::new();
        e.on_increment(&b, &[ProfileId(0)]);
        let first = e.next_batch(&b, 1);
        assert_eq!(first, vec![Comparison::new(ProfileId(0), ProfileId(1))]);
    }

    #[test]
    fn no_duplicate_emissions() {
        let b = blocker(&["aa bb", "aa bb", "aa cc", "bb cc"]);
        let mut e = LsPsn::new().with_max_window(50);
        e.on_increment(&b, &[ProfileId(0)]);
        let mut seen = HashSet::new();
        loop {
            let batch = e.next_batch(&b, 8);
            if batch.is_empty() {
                break;
            }
            for c in batch {
                assert!(seen.insert(c), "duplicate {c}");
            }
        }
        assert!(seen.len() >= 4);
    }

    #[test]
    fn max_window_bounds_recall() {
        // Profiles that share no token can still pair within a window if
        // their tokens sort adjacently; a tiny window emits fewer pairs
        // than a large one.
        let texts: Vec<String> = (0..12).map(|i| format!("tok{i:02} shared")).collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let b = blocker(&refs);
        let count = |w: usize| {
            let mut e = LsPsn::new().with_max_window(w);
            e.on_increment(&b, &[ProfileId(0)]);
            let mut n = 0;
            loop {
                let batch = e.next_batch(&b, 64);
                if batch.is_empty() {
                    break;
                }
                n += batch.len();
            }
            n
        };
        assert!(count(1) < count(8));
    }

    #[test]
    fn clean_clean_pairs_cross_sources() {
        let mut b = IncrementalBlocker::new(ErKind::CleanClean);
        b.process_profile(EntityProfile::new(ProfileId(0), SourceId(0)).with("t", "tok"));
        b.process_profile(EntityProfile::new(ProfileId(1), SourceId(0)).with("t", "tok"));
        b.process_profile(EntityProfile::new(ProfileId(2), SourceId(1)).with("t", "tok"));
        let mut e = LsPsn::new();
        e.on_increment(&b, &[ProfileId(0)]);
        let mut all = Vec::new();
        loop {
            let batch = e.next_batch(&b, 8);
            if batch.is_empty() {
                break;
            }
            all.extend(batch);
        }
        for c in &all {
            assert_ne!(b.collection().source_of(c.a), b.collection().source_of(c.b));
        }
        assert!(!all.is_empty());
    }

    #[test]
    fn rebuild_resets_the_scan_but_not_emissions() {
        let mut b = blocker(&["xx yy", "xx yy"]);
        let mut e = LsPsn::new();
        e.on_increment(&b, &[ProfileId(0), ProfileId(1)]);
        let first = e.next_batch(&b, 10);
        assert_eq!(first.len(), 1);
        b.process_profile(EntityProfile::new(ProfileId(2), SourceId(0)).with("t", "xx"));
        e.on_increment(&b, &[ProfileId(2)]);
        let second = e.next_batch(&b, 10);
        assert!(!second.contains(&Comparison::new(ProfileId(0), ProfileId(1))));
    }

    #[test]
    fn ops_accumulate_with_multiplier() {
        let b = blocker(&["mm nn", "mm nn"]);
        let mut e = LsPsn::new();
        e.on_increment(&b, &[ProfileId(0)]);
        assert!(e.drain_ops() > 0);
    }

    #[test]
    fn gs_psn_ranks_repeated_cooccurrences_first() {
        // p0/p1 co-occur under two tokens (higher aggregate weight) while
        // p2 shares only one token with each.
        let b = blocker(&["aa bb", "aa bb", "aa cc"]);
        let mut e = GsPsn::new();
        e.on_increment(&b, &[ProfileId(0)]);
        let first = e.next_batch(&b, 1);
        assert_eq!(first, vec![Comparison::new(ProfileId(0), ProfileId(1))]);
    }

    #[test]
    fn gs_psn_never_repeats() {
        let b = blocker(&["aa bb", "aa bb", "aa cc", "bb cc"]);
        let mut e = GsPsn::new().with_max_window(30);
        e.on_increment(&b, &[ProfileId(0)]);
        let mut seen = HashSet::new();
        loop {
            let batch = e.next_batch(&b, 8);
            if batch.is_empty() {
                break;
            }
            for c in batch {
                assert!(seen.insert(c), "duplicate {c}");
            }
        }
        assert!(seen.len() >= 4);
        assert!(!e.has_pending());
    }

    #[test]
    fn gs_psn_rebuild_skips_emitted() {
        let mut b = blocker(&["xx yy", "xx yy"]);
        let mut e = GsPsn::new();
        e.on_increment(&b, &[ProfileId(0), ProfileId(1)]);
        assert_eq!(e.next_batch(&b, 10).len(), 1);
        b.process_profile(EntityProfile::new(ProfileId(2), SourceId(0)).with("t", "xx"));
        e.on_increment(&b, &[ProfileId(2)]);
        let second = e.next_batch(&b, 10);
        assert!(!second.contains(&Comparison::new(ProfileId(0), ProfileId(1))));
    }

    #[test]
    fn gs_psn_init_costs_more_than_ls_psn() {
        let texts: Vec<String> = (0..30).map(|i| format!("shared uniq{i}")).collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let b = blocker(&refs);
        let mut ls = LsPsn::new();
        ls.on_increment(&b, &[ProfileId(0)]);
        let ls_ops = ls.drain_ops();
        let mut gs = GsPsn::new();
        gs.on_increment(&b, &[ProfileId(0)]);
        let gs_ops = gs.drain_ops();
        assert!(gs_ops > ls_ops * 2, "gs {gs_ops} vs ls {ls_ops}");
    }
}
