//! I-BASE — the incremental (but not progressive) baseline \[17\].
//!
//! The state-of-the-art incremental ER pipeline the paper extends: for each
//! arriving profile, incremental blocking → block ghosting → I-WNP selects
//! a set of comparisons, *all* of which are executed in generation (FIFO)
//! order. Two properties distinguish it from the PIER algorithms:
//!
//! 1. **No prioritization** — comparisons run in arrival order, so early
//!    quality is whatever the stream order yields.
//! 2. **No adaptivity** — the number of comparisons generated per increment
//!    is fixed by blocking/cleaning alone, "independently of the input rate
//!    or the system's response" (§7.3.1). With an expensive matcher the
//!    FIFO backlog grows without bound and stream consumption stalls.

use std::collections::VecDeque;

use pier_blocking::IncrementalBlocker;
use pier_collections::{ScalableBloomFilter, ScratchStats};
use pier_core::{framework::generate_for_profile, ComparisonEmitter, PierConfig};
use pier_metablocking::Iwnp;
use pier_types::{Comparison, ProfileId};

/// The I-BASE emitter.
pub struct IBase {
    config: PierConfig,
    queue: VecDeque<Comparison>,
    enqueued: ScalableBloomFilter,
    iwnp: Iwnp,
    ops: u64,
}

impl IBase {
    /// Creates an I-BASE emitter (same β/scheme configuration as the PIER
    /// strategies, so eventual quality is comparable).
    pub fn new(config: PierConfig) -> Self {
        IBase {
            config,
            queue: VecDeque::new(),
            enqueued: ScalableBloomFilter::for_comparisons(),
            iwnp: Iwnp::new(),
            ops: 0,
        }
    }

    /// Current FIFO backlog (the quantity that explodes on fast streams).
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }
}

impl ComparisonEmitter for IBase {
    fn on_increment(&mut self, blocker: &IncrementalBlocker, new_ids: &[ProfileId]) {
        for &p in new_ids {
            let (list, ops) = generate_for_profile(blocker, p, &self.config, &mut self.iwnp);
            self.ops += ops;
            for wc in list {
                if self.enqueued.insert(wc.cmp.key()) {
                    self.queue.push_back(wc.cmp);
                    self.ops += 1;
                }
            }
        }
    }

    fn next_batch(&mut self, _blocker: &IncrementalBlocker, _k: usize) -> Vec<Comparison> {
        // Non-adaptive: the whole backlog is handed over regardless of `k`.
        self.ops += self.queue.len() as u64;
        self.queue.drain(..).collect()
    }

    fn drain_ops(&mut self) -> u64 {
        std::mem::take(&mut self.ops)
    }

    fn has_pending(&self) -> bool {
        !self.queue.is_empty()
    }

    fn name(&self) -> String {
        "I-BASE".to_string()
    }

    fn scratch_stats(&self) -> Option<ScratchStats> {
        Some(self.iwnp.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pier_types::{EntityProfile, ErKind, SourceId};

    fn blocker(texts: &[&str]) -> IncrementalBlocker {
        let mut b = IncrementalBlocker::new(ErKind::Dirty);
        for (i, t) in texts.iter().enumerate() {
            b.process_profile(
                EntityProfile::new(ProfileId(i as u32), SourceId(0)).with("text", *t),
            );
        }
        b
    }

    #[test]
    fn emits_in_generation_order_ignoring_k() {
        let b = blocker(&["aa bb", "aa bb", "aa bb cc", "cc dd"]);
        let mut e = IBase::new(PierConfig::default());
        e.on_increment(
            &b,
            &[ProfileId(0), ProfileId(1), ProfileId(2), ProfileId(3)],
        );
        let backlog = e.backlog();
        assert!(backlog >= 2);
        // k = 1 is ignored: everything is handed over at once.
        let batch = e.next_batch(&b, 1);
        assert_eq!(batch.len(), backlog);
        assert!(!e.has_pending());
    }

    #[test]
    fn never_enqueues_a_pair_twice() {
        let mut b = blocker(&["xx yy", "xx yy"]);
        let mut e = IBase::new(PierConfig::default());
        e.on_increment(&b, &[ProfileId(0), ProfileId(1)]);
        let first = e.next_batch(&b, 100);
        assert_eq!(first.len(), 1);
        // A third profile sharing the block generates pairs to 0 and 1 but
        // must not regenerate (0,1).
        b.process_profile(EntityProfile::new(ProfileId(2), SourceId(0)).with("t", "xx yy"));
        e.on_increment(&b, &[ProfileId(2)]);
        let second = e.next_batch(&b, 100);
        assert_eq!(second.len(), 2);
        assert!(!second.contains(&Comparison::new(ProfileId(0), ProfileId(1))));
    }

    #[test]
    fn empty_tick_generates_nothing() {
        let b = blocker(&["mm nn", "mm nn"]);
        let mut e = IBase::new(PierConfig::default());
        e.on_increment(&b, &[]);
        assert_eq!(e.backlog(), 0);
        assert!(!e.has_pending());
    }

    #[test]
    fn iwnp_prunes_weak_candidates() {
        // p3 shares 3 tokens with p0 and 1 token with p1/p2: I-WNP keeps
        // only the strong candidate.
        let b = blocker(&["t1 t2 t3", "t4 filler0", "t5 filler1", "t1 t2 t3 t4 t5"]);
        let mut e = IBase::new(PierConfig::default());
        e.on_increment(&b, &[ProfileId(3)]);
        let batch = e.next_batch(&b, 100);
        assert_eq!(batch, vec![Comparison::new(ProfileId(0), ProfileId(3))]);
    }

    #[test]
    fn ops_accumulate() {
        let b = blocker(&["qq rr", "qq rr"]);
        let mut e = IBase::new(PierConfig::default());
        e.on_increment(&b, &[ProfileId(0), ProfileId(1)]);
        assert!(e.drain_ops() > 0);
    }
}
