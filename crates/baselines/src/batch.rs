//! Plain batch ER (`F_batch`).
//!
//! No prioritization whatsoever: comparisons are generated block by block
//! in block-id order (i.e. token discovery order — arbitrary but
//! deterministic) with hash-set redundancy removal, and executed in that
//! order. Progressive behaviour is absent by construction; batch ER is the
//! baseline whose *eventual* quality the progressive methods must reach
//! (Definition 1) and whose matches-over-time curve is the step function of
//! Figure 1.

use std::collections::HashSet;

use pier_blocking::{BlockId, IncrementalBlocker};
use pier_core::ComparisonEmitter;
use pier_types::{Comparison, ProfileId};

/// The batch ER emitter.
#[derive(Debug, Default)]
pub struct BatchEr {
    /// Blocks whose comparisons were already generated.
    generated_blocks: HashSet<BlockId>,
    /// All pairs ever queued (redundancy removal).
    seen: HashSet<Comparison>,
    queue: std::collections::VecDeque<Comparison>,
    ops: u64,
}

impl BatchEr {
    /// Creates a batch ER emitter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Generates the comparisons of every block not yet generated, in
    /// block-id order.
    fn generate_all(&mut self, blocker: &IncrementalBlocker) {
        let collection = blocker.collection();
        let kind = collection.kind();
        let mut block_ids: Vec<BlockId> = collection
            .active_blocks()
            .filter(|(bid, b)| !self.generated_blocks.contains(bid) && b.cardinality(kind) > 0)
            .map(|(bid, _)| bid)
            .collect();
        block_ids.sort_unstable();
        for bid in block_ids {
            self.generated_blocks.insert(bid);
            let block = collection.block(bid).expect("active block");
            let members: Vec<ProfileId> = block.members().collect();
            for (i, &x) in members.iter().enumerate() {
                for &y in &members[i + 1..] {
                    self.ops += 1;
                    if kind == pier_types::ErKind::CleanClean
                        && collection.source_of(x) == collection.source_of(y)
                    {
                        continue;
                    }
                    let cmp = Comparison::new(x, y);
                    if self.seen.insert(cmp) {
                        self.queue.push_back(cmp);
                    }
                }
            }
        }
    }
}

impl ComparisonEmitter for BatchEr {
    fn on_increment(&mut self, blocker: &IncrementalBlocker, _new_ids: &[ProfileId]) {
        self.generate_all(blocker);
    }

    fn next_batch(&mut self, _blocker: &IncrementalBlocker, k: usize) -> Vec<Comparison> {
        let take = k.min(self.queue.len());
        self.ops += take as u64;
        self.queue.drain(..take).collect()
    }

    fn drain_ops(&mut self) -> u64 {
        std::mem::take(&mut self.ops)
    }

    fn has_pending(&self) -> bool {
        !self.queue.is_empty()
    }

    fn name(&self) -> String {
        "BATCH".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pier_types::{EntityProfile, ErKind, SourceId};

    fn blocker(texts: &[&str]) -> IncrementalBlocker {
        let mut b = IncrementalBlocker::new(ErKind::Dirty);
        for (i, t) in texts.iter().enumerate() {
            b.process_profile(
                EntityProfile::new(ProfileId(i as u32), SourceId(0)).with("text", *t),
            );
        }
        b
    }

    #[test]
    fn generates_all_non_redundant_comparisons() {
        let b = blocker(&["aa bb", "aa bb", "aa cc", "bb cc"]);
        let mut e = BatchEr::new();
        e.on_increment(&b, &[]);
        let mut all = Vec::new();
        loop {
            let batch = e.next_batch(&b, 3);
            if batch.is_empty() {
                break;
            }
            all.extend(batch);
        }
        // Blocks: aa={0,1,2}, bb={0,1,3}, cc={2,3} -> pairs
        // (0,1),(0,2),(1,2),(0,3),(1,3),(2,3) = 6 distinct.
        assert_eq!(all.len(), 6);
        let set: HashSet<Comparison> = all.iter().copied().collect();
        assert_eq!(set.len(), 6, "no duplicates");
    }

    #[test]
    fn later_increments_only_add_new_blocks() {
        let mut b = blocker(&["aa bb", "aa bb"]);
        let mut e = BatchEr::new();
        e.on_increment(&b, &[ProfileId(0), ProfileId(1)]);
        let first: Vec<Comparison> = e.next_batch(&b, 100);
        assert_eq!(first.len(), 1);
        // New profile joins block aa: the block was already generated, so
        // only the freshly appearing block dd yields the remaining pairs...
        b.process_profile(EntityProfile::new(ProfileId(2), SourceId(0)).with("t", "dd ee"));
        b.process_profile(EntityProfile::new(ProfileId(3), SourceId(0)).with("t", "dd ee"));
        e.on_increment(&b, &[ProfileId(2), ProfileId(3)]);
        let second = e.next_batch(&b, 100);
        assert_eq!(second.len(), 1);
        assert_eq!(second[0], Comparison::new(ProfileId(2), ProfileId(3)));
    }

    #[test]
    fn emission_order_is_block_id_order() {
        let b = blocker(&["first shared", "first shared", "later token", "later token"]);
        let mut e = BatchEr::new();
        e.on_increment(&b, &[]);
        let all = e.next_batch(&b, 100);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0], Comparison::new(ProfileId(0), ProfileId(1)));
    }

    #[test]
    fn respects_k() {
        let b = blocker(&["zz", "zz", "zz"]);
        let mut e = BatchEr::new();
        e.on_increment(&b, &[]);
        assert_eq!(e.next_batch(&b, 2).len(), 2);
        assert!(e.has_pending());
        assert_eq!(e.next_batch(&b, 2).len(), 1);
        assert!(!e.has_pending());
    }

    #[test]
    fn ops_count_generation_work() {
        let b = blocker(&["ww xx", "ww xx"]);
        let mut e = BatchEr::new();
        e.on_increment(&b, &[]);
        assert!(e.drain_ops() > 0);
    }
}
