//! Progressive Block Scheduling (PBS) and its GLOBAL adaptation.
//!
//! PBS \[36\] sorts the block collection ascending by block size; the
//! comparisons *inside* a block are ordered by a meta-blocking weight (CBS
//! here) lazily, when the block's turn comes. Initialization is therefore
//! much cheaper than PPS's graph build — the reason PBS shows the best
//! early quality on large static datasets in §7.2.1 — but it still scans
//! every block and profile occurrence, which as **PBS-GLOBAL** (full
//! re-initialization per increment, §7.3) is re-paid on every increment
//! and swamps fast streams.
//!
//! Driven with a single increment containing the whole dataset this is the
//! batch PBS baseline of Figures 4–6; driven per increment it is
//! PBS-GLOBAL.

use std::collections::{HashSet, VecDeque};

use pier_blocking::{BlockId, IncrementalBlocker};
use pier_core::ComparisonEmitter;
use pier_types::{Comparison, ProfileId, WeightedComparison};

/// The PBS emitter (batch PBS or PBS-GLOBAL depending on how it is driven).
#[derive(Debug)]
pub struct Pbs {
    /// Comparisons already handed to the matcher — never re-emitted across
    /// re-initializations.
    emitted: HashSet<Comparison>,
    /// Blocks of the current schedule, smallest first (snapshot of the last
    /// re-initialization).
    block_queue: VecDeque<BlockId>,
    /// CBS-ordered comparisons of the block currently being drained.
    buffer: VecDeque<Comparison>,
    rebuild_cost_multiplier: u64,
    ops: u64,
}

impl Default for Pbs {
    fn default() -> Self {
        Self::new()
    }
}

impl Pbs {
    /// Creates a PBS emitter.
    pub fn new() -> Self {
        Pbs {
            emitted: HashSet::new(),
            block_queue: VecDeque::new(),
            buffer: VecDeque::new(),
            rebuild_cost_multiplier: 8,
            ops: 0,
        }
    }

    /// Overrides the re-initialization cost multiplier (see the PPS
    /// equivalent: calibrates virtual init cost to the original JVM
    /// implementation's measured behaviour; default 8, 1 = raw ops).
    #[must_use]
    pub fn with_rebuild_cost_multiplier(mut self, m: u64) -> Self {
        assert!(m > 0, "multiplier must be positive");
        self.rebuild_cost_multiplier = m;
        self
    }

    /// (Re-)initialization: snapshot all blocks sorted ascending by size.
    /// Comparisons are *not* materialized here (they are CBS-ordered lazily
    /// per block during emission); the charged cost still scans every block
    /// and member occurrence, which is what PBS-GLOBAL re-pays per
    /// increment.
    fn rebuild(&mut self, blocker: &IncrementalBlocker) {
        self.buffer.clear();
        let collection = blocker.collection();
        let kind = collection.kind();
        let mut blocks: Vec<(usize, BlockId)> = Vec::new();
        for (bid, b) in collection.active_blocks() {
            // Scanning a block costs its size (membership bookkeeping).
            self.ops += 1 + b.len() as u64;
            if b.cardinality(kind) > 0 {
                blocks.push((b.len(), bid));
            }
        }
        blocks.sort_unstable();
        self.block_queue = blocks.into_iter().map(|(_, bid)| bid).collect();
    }

    /// Materializes the next block's comparisons, CBS-ordered, skipping
    /// already-emitted pairs. Returns whether anything was buffered.
    fn fill_buffer(&mut self, blocker: &IncrementalBlocker) -> bool {
        let collection = blocker.collection();
        let kind = collection.kind();
        while let Some(bid) = self.block_queue.pop_front() {
            let Some(block) = collection.block(bid) else {
                continue;
            };
            if block.is_purged() {
                continue;
            }
            let members: Vec<ProfileId> = block.members().collect();
            let mut in_block: Vec<WeightedComparison> = Vec::new();
            for (i, &x) in members.iter().enumerate() {
                for &y in &members[i + 1..] {
                    self.ops += 1;
                    if kind == pier_types::ErKind::CleanClean
                        && collection.source_of(x) == collection.source_of(y)
                    {
                        continue;
                    }
                    let cmp = Comparison::new(x, y);
                    if self.emitted.contains(&cmp) {
                        continue;
                    }
                    let w = collection.common_blocks(x, y) as f64;
                    self.ops += 1;
                    in_block.push(WeightedComparison::new(cmp, w));
                }
            }
            if in_block.is_empty() {
                continue;
            }
            in_block.sort_unstable_by(|a, b| b.cmp(a));
            self.buffer.extend(in_block.into_iter().map(|wc| wc.cmp));
            return true;
        }
        false
    }
}

impl ComparisonEmitter for Pbs {
    fn on_increment(&mut self, blocker: &IncrementalBlocker, new_ids: &[ProfileId]) {
        // Empty ticks do not trigger the (expensive) re-initialization.
        if !new_ids.is_empty() {
            let before = self.ops;
            self.rebuild(blocker);
            self.ops += (self.ops - before) * (self.rebuild_cost_multiplier - 1);
        }
    }

    fn next_batch(&mut self, blocker: &IncrementalBlocker, k: usize) -> Vec<Comparison> {
        let mut batch = Vec::with_capacity(k);
        while batch.len() < k {
            if self.buffer.is_empty() && !self.fill_buffer(blocker) {
                break;
            }
            if let Some(cmp) = self.buffer.pop_front() {
                // `emitted` marks the pair at hand-out time, which also
                // dedups pairs appearing in several queued blocks.
                if self.emitted.insert(cmp) {
                    self.ops += 1;
                    batch.push(cmp);
                }
            }
        }
        batch
    }

    fn drain_ops(&mut self) -> u64 {
        std::mem::take(&mut self.ops)
    }

    fn has_pending(&self) -> bool {
        !self.buffer.is_empty() || !self.block_queue.is_empty()
    }

    fn name(&self) -> String {
        "PBS".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pier_types::{EntityProfile, ErKind, SourceId};

    fn blocker(texts: &[&str]) -> IncrementalBlocker {
        let mut b = IncrementalBlocker::new(ErKind::Dirty);
        for (i, t) in texts.iter().enumerate() {
            b.process_profile(
                EntityProfile::new(ProfileId(i as u32), SourceId(0)).with("text", *t),
            );
        }
        b
    }

    #[test]
    fn smallest_blocks_first_cbs_within() {
        // Block "rare"={0,1} (size 2); block "pop"={0,1,2,3} (size 4).
        // Within "pop": (0,1) has CBS 2 but is deduped by the rare block;
        // remaining pairs have CBS 1.
        let b = blocker(&["rare pop", "rare pop", "pop aux1", "pop aux2"]);
        let mut e = Pbs::new();
        e.on_increment(&b, &[ProfileId(0)]); // any non-empty trigger
        let all = e.next_batch(&b, 100);
        assert_eq!(all[0], Comparison::new(ProfileId(0), ProfileId(1)));
        assert_eq!(all.len(), 6);
    }

    #[test]
    fn reinitialization_never_reemits() {
        let mut b = blocker(&["tok aa", "tok aa"]);
        let mut e = Pbs::new();
        e.on_increment(&b, &[ProfileId(0), ProfileId(1)]);
        let first = e.next_batch(&b, 10);
        assert_eq!(first.len(), 1);
        // New increment extends the same block; rebuild happens.
        b.process_profile(EntityProfile::new(ProfileId(2), SourceId(0)).with("t", "tok"));
        e.on_increment(&b, &[ProfileId(2)]);
        let second = e.next_batch(&b, 10);
        // Only the two new pairs appear, (0,1) is not repeated.
        assert_eq!(second.len(), 2);
        assert!(!second.contains(&Comparison::new(ProfileId(0), ProfileId(1))));
    }

    #[test]
    fn rebuild_cost_grows_with_data() {
        let texts: Vec<String> = (0..20).map(|i| format!("shared uniq{i}")).collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let b = blocker(&refs);
        let mut e = Pbs::new();
        e.on_increment(&b, &[ProfileId(0)]);
        let cost_full = e.drain_ops();

        let b_small = blocker(&refs[..5]);
        let mut e2 = Pbs::new();
        e2.on_increment(&b_small, &[ProfileId(0)]);
        let cost_small = e2.drain_ops();
        assert!(
            cost_full > cost_small * 3,
            "full {cost_full} vs small {cost_small}"
        );
    }

    #[test]
    fn empty_tick_is_free() {
        let b = blocker(&["xx yy", "xx yy"]);
        let mut e = Pbs::new();
        e.on_increment(&b, &[ProfileId(0), ProfileId(1)]);
        e.drain_ops();
        e.on_increment(&b, &[]); // tick
        assert_eq!(e.drain_ops(), 0);
    }

    #[test]
    fn respects_k() {
        let b = blocker(&["zz", "zz", "zz"]);
        let mut e = Pbs::new();
        e.on_increment(&b, &[ProfileId(0)]);
        assert_eq!(e.next_batch(&b, 2).len(), 2);
        assert!(e.has_pending());
    }
}
