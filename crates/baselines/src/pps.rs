//! Progressive Profile Scheduling (PPS) and its GLOBAL/LOCAL adaptations.
//!
//! PPS \[36\] is the entity-centric batch progressive method: it builds the
//! meta-blocking graph, prunes it with WNP, scores every profile's
//! *duplication likelihood* from its retained edge weights, and emits (1) a
//! global list of each profile's single best comparison, sorted descending,
//! then (2) for each profile in likelihood order, its top-`k` non-redundant
//! comparisons. The graph build makes initialization `O(Σ‖b‖)` — the
//! dominant cost on large datasets (§7.2.1: more than 4 hours on
//! `D_dbpedia`).
//!
//! Adaptations to the incremental setting (§1, §7.3):
//! * [`PpsScope::Global`] — **PPS-GLOBAL** re-initializes over *all* data on
//!   every non-empty increment: good order, crushing overhead on fast or
//!   long streams.
//! * [`PpsScope::Local`] — **PPS-LOCAL** builds the graph over the last
//!   increment only: cheap, but blind to inter-increment comparisons and
//!   therefore finds almost nothing.

use std::collections::{HashMap, HashSet};

use pier_blocking::IncrementalBlocker;
use pier_core::ComparisonEmitter;
use pier_metablocking::{wnp, BlockingGraph, WeightingScheme};
use pier_types::{Comparison, ProfileId, TokenId, WeightedComparison};

/// Which data PPS considers when (re-)initializing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PpsScope {
    /// All profiles seen so far (PPS in batch mode / PPS-GLOBAL).
    Global,
    /// Only the profiles of the last increment (PPS-LOCAL).
    Local,
}

/// The PPS emitter.
pub struct Pps {
    scope: PpsScope,
    /// Per-profile budget for phase-2 emission (top-k comparisons).
    per_profile_k: usize,
    scheme: WeightingScheme,
    emitted: HashSet<Comparison>,
    schedule: std::collections::VecDeque<Comparison>,
    rebuild_cost_multiplier: u64,
    ops: u64,
}

impl Pps {
    /// Creates a PPS emitter with the given scope, `CBS` weighting and the
    /// default per-profile budget of 10.
    pub fn new(scope: PpsScope) -> Self {
        Pps {
            scope,
            per_profile_k: 10,
            scheme: WeightingScheme::Cbs,
            emitted: HashSet::new(),
            schedule: std::collections::VecDeque::new(),
            rebuild_cost_multiplier: 8,
            ops: 0,
        }
    }

    /// Overrides the per-profile comparison budget.
    #[must_use]
    pub fn with_per_profile_k(mut self, k: usize) -> Self {
        assert!(k > 0, "per-profile budget must be positive");
        self.per_profile_k = k;
        self
    }

    /// Overrides the re-initialization cost multiplier.
    ///
    /// Each (re-)initialization charges its elementary op count times this
    /// constant. The default of 8 calibrates the virtual clock to the
    /// *measured* behaviour of the original JVM implementation, where PPS
    /// initialization is far heavier per elementary operation than this
    /// crate's tight loops (over 4 hours on `D_dbpedia`, §7.2.1); see
    /// DESIGN.md §2. Set to 1 for raw op accounting.
    #[must_use]
    pub fn with_rebuild_cost_multiplier(mut self, m: u64) -> Self {
        assert!(m > 0, "multiplier must be positive");
        self.rebuild_cost_multiplier = m;
        self
    }

    /// Builds the emission schedule from a set of weighted edges.
    fn schedule_from_edges(&mut self, edges: Vec<WeightedComparison>) {
        self.schedule.clear();
        // Adjacency over the retained (pruned) edges.
        let mut incident: HashMap<ProfileId, Vec<WeightedComparison>> = HashMap::new();
        for wc in edges {
            if self.emitted.contains(&wc.cmp) {
                continue;
            }
            incident.entry(wc.cmp.a).or_default().push(wc);
            incident.entry(wc.cmp.b).or_default().push(wc);
            self.ops += 1;
        }
        // Duplication likelihood: best retained weight (avg tie-break).
        let mut profiles: Vec<(ProfileId, f64, f64)> = incident
            .iter()
            .map(|(&p, list)| {
                let best = list.iter().map(|w| w.weight).fold(f64::MIN, f64::max);
                let avg: f64 = list.iter().map(|w| w.weight).sum::<f64>() / list.len() as f64;
                (p, best, avg)
            })
            .collect();
        profiles.sort_unstable_by(|a, b| {
            (b.1, b.2, a.0)
                .partial_cmp(&(a.1, a.2, b.0))
                .expect("finite")
        });
        // Phase 1: the single best comparison of each profile, globally
        // sorted by weight.
        let mut top_list: Vec<WeightedComparison> = profiles
            .iter()
            .filter_map(|&(p, _, _)| incident[&p].iter().max_by(|a, b| a.cmp(b)).copied())
            .collect();
        top_list.sort_unstable_by(|a, b| b.cmp(a));
        let mut scheduled: HashSet<Comparison> = HashSet::new();
        for wc in top_list {
            if scheduled.insert(wc.cmp) {
                self.schedule.push_back(wc.cmp);
                self.ops += 1;
            }
        }
        // Phase 2: per profile in likelihood order, its top-k comparisons.
        for &(p, _, _) in &profiles {
            let mut list = incident[&p].clone();
            list.sort_unstable_by(|a, b| b.cmp(a));
            for wc in list.into_iter().take(self.per_profile_k) {
                if scheduled.insert(wc.cmp) {
                    self.schedule.push_back(wc.cmp);
                    self.ops += 1;
                }
            }
        }
    }

    /// Global scope: graph over the full block collection.
    fn rebuild_global(&mut self, blocker: &IncrementalBlocker) {
        let graph = BlockingGraph::build(blocker.collection(), self.scheme);
        self.ops += graph.build_work();
        let edges = wnp(&graph);
        self.ops += edges.len() as u64;
        self.schedule_from_edges(edges);
    }

    /// Local scope: token-blocking graph over the last increment only.
    fn rebuild_local(&mut self, blocker: &IncrementalBlocker, new_ids: &[ProfileId]) {
        let collection = blocker.collection();
        // Token -> local profiles, built from the stored token sets.
        let mut token_map: HashMap<TokenId, Vec<ProfileId>> = HashMap::new();
        for &p in new_ids {
            for &t in blocker.tokens_of(p) {
                token_map.entry(t).or_default().push(p);
            }
        }
        let mut cbs: HashMap<Comparison, u32> = HashMap::new();
        for members in token_map.values() {
            for (i, &x) in members.iter().enumerate() {
                for &y in &members[i + 1..] {
                    self.ops += 1;
                    if collection.kind() == pier_types::ErKind::CleanClean
                        && collection.source_of(x) == collection.source_of(y)
                    {
                        continue;
                    }
                    *cbs.entry(Comparison::new(x, y)).or_insert(0) += 1;
                }
            }
        }
        let edges: Vec<WeightedComparison> = cbs
            .into_iter()
            .map(|(c, w)| WeightedComparison::new(c, w as f64))
            .collect();
        self.schedule_from_edges(edges);
    }
}

impl ComparisonEmitter for Pps {
    fn on_increment(&mut self, blocker: &IncrementalBlocker, new_ids: &[ProfileId]) {
        if new_ids.is_empty() {
            return; // ticks don't trigger re-initialization
        }
        let before = self.ops;
        match self.scope {
            PpsScope::Global => self.rebuild_global(blocker),
            PpsScope::Local => self.rebuild_local(blocker, new_ids),
        }
        self.ops += (self.ops - before) * (self.rebuild_cost_multiplier - 1);
    }

    fn next_batch(&mut self, _blocker: &IncrementalBlocker, k: usize) -> Vec<Comparison> {
        let take = k.min(self.schedule.len());
        let batch: Vec<Comparison> = self.schedule.drain(..take).collect();
        for &c in &batch {
            self.emitted.insert(c);
        }
        self.ops += take as u64;
        batch
    }

    fn drain_ops(&mut self) -> u64 {
        std::mem::take(&mut self.ops)
    }

    fn has_pending(&self) -> bool {
        !self.schedule.is_empty()
    }

    fn name(&self) -> String {
        match self.scope {
            PpsScope::Global => "PPS".to_string(),
            PpsScope::Local => "PPS-LOCAL".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pier_types::{EntityProfile, ErKind, SourceId};

    fn blocker(texts: &[&str]) -> IncrementalBlocker {
        let mut b = IncrementalBlocker::new(ErKind::Dirty);
        for (i, t) in texts.iter().enumerate() {
            b.process_profile(
                EntityProfile::new(ProfileId(i as u32), SourceId(0)).with("text", *t),
            );
        }
        b
    }

    #[test]
    fn global_emits_strongest_pair_first() {
        let b = blocker(&[
            "alpha beta gamma delta",
            "alpha beta gamma delta",
            "alpha solo1 solo2",
            "beta other tokens",
        ]);
        let mut e = Pps::new(PpsScope::Global);
        e.on_increment(&b, &[ProfileId(0)]);
        let first = e.next_batch(&b, 1);
        assert_eq!(first, vec![Comparison::new(ProfileId(0), ProfileId(1))]);
    }

    #[test]
    fn local_misses_inter_increment_pairs() {
        let mut b = blocker(&["match tokens here", "filler unrelated"]);
        let mut e = Pps::new(PpsScope::Local);
        e.on_increment(&b, &[ProfileId(0), ProfileId(1)]);
        let _ = e.next_batch(&b, 100);
        // The duplicate of p0 arrives in increment 2.
        b.process_profile(
            EntityProfile::new(ProfileId(2), SourceId(0)).with("t", "match tokens here"),
        );
        e.on_increment(&b, &[ProfileId(2)]);
        let batch = e.next_batch(&b, 100);
        // LOCAL only looked inside {p2}: the (p0, p2) match is invisible.
        assert!(batch.is_empty(), "got {batch:?}");
    }

    #[test]
    fn global_catches_inter_increment_pairs() {
        let mut b = blocker(&["match tokens here", "filler unrelated"]);
        let mut e = Pps::new(PpsScope::Global);
        e.on_increment(&b, &[ProfileId(0), ProfileId(1)]);
        let _ = e.next_batch(&b, 100);
        b.process_profile(
            EntityProfile::new(ProfileId(2), SourceId(0)).with("t", "match tokens here"),
        );
        e.on_increment(&b, &[ProfileId(2)]);
        let batch = e.next_batch(&b, 100);
        assert!(batch.contains(&Comparison::new(ProfileId(0), ProfileId(2))));
    }

    #[test]
    fn no_reemission_across_rebuilds() {
        let mut b = blocker(&["dup pair one", "dup pair one"]);
        let mut e = Pps::new(PpsScope::Global);
        e.on_increment(&b, &[ProfileId(0), ProfileId(1)]);
        let first = e.next_batch(&b, 100);
        assert!(first.contains(&Comparison::new(ProfileId(0), ProfileId(1))));
        b.process_profile(EntityProfile::new(ProfileId(2), SourceId(0)).with("t", "dup pair"));
        e.on_increment(&b, &[ProfileId(2)]);
        let second = e.next_batch(&b, 100);
        assert!(!second.contains(&Comparison::new(ProfileId(0), ProfileId(1))));
    }

    #[test]
    fn global_rebuild_cost_grows_with_dataset() {
        let texts: Vec<String> = (0..30).map(|i| format!("shared uniq{i}")).collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let b_full = blocker(&refs);
        let b_small = blocker(&refs[..5]);
        let mut e1 = Pps::new(PpsScope::Global);
        e1.on_increment(&b_full, &[ProfileId(0)]);
        let full = e1.drain_ops();
        let mut e2 = Pps::new(PpsScope::Global);
        e2.on_increment(&b_small, &[ProfileId(0)]);
        let small = e2.drain_ops();
        assert!(full > small * 5, "full {full} vs small {small}");
    }

    #[test]
    fn per_profile_budget_limits_phase_two() {
        // A hub profile with many weak neighbors.
        let mut texts = vec!["hub tok0 tok1 tok2 tok3"];
        let neighbors: Vec<String> = (0..8).map(|i| format!("hub neigh{i}")).collect();
        texts.extend(neighbors.iter().map(String::as_str));
        let b = blocker(&texts);
        let mut e = Pps::new(PpsScope::Global).with_per_profile_k(2);
        e.on_increment(&b, &[ProfileId(0)]);
        // Should still emit something but bounded overall.
        let batch = e.next_batch(&b, 1000);
        assert!(!batch.is_empty());
    }

    #[test]
    fn ticks_are_free() {
        let b = blocker(&["aa bb", "aa bb"]);
        let mut e = Pps::new(PpsScope::Global);
        e.on_increment(&b, &[ProfileId(0)]);
        e.drain_ops();
        e.on_increment(&b, &[]);
        assert_eq!(e.drain_ops(), 0);
    }

    #[test]
    fn names_reflect_scope() {
        assert_eq!(Pps::new(PpsScope::Global).name(), "PPS");
        assert_eq!(Pps::new(PpsScope::Local).name(), "PPS-LOCAL");
    }
}
