//! Baseline ER algorithms the paper compares against.
//!
//! * [`batch`] — plain batch ER (`F_batch`): all blocked comparisons in
//!   arbitrary (block-id) order, no prioritization. The reference point of
//!   Definitions 1–3 and Figure 1.
//! * [`pbs`] — Progressive Block Scheduling \[36\]: blocks smallest-first,
//!   CBS-ordered comparisons inside each block. Run with a single increment
//!   it is batch PBS; run per-increment it is the paper's **PBS-GLOBAL**
//!   adaptation (full re-initialization on every increment).
//! * [`pps`] — Progressive Profile Scheduling \[36\]: meta-blocking graph →
//!   per-profile duplication likelihood → sorted profile list with top-k
//!   comparisons each. Scope `Global` re-initializes over all data per
//!   increment (**PPS-GLOBAL**); scope `Local` only considers the last
//!   increment (**PPS-LOCAL**).
//! * [`ibase`] — **I-BASE** \[17\]: the state-of-the-art incremental (but not
//!   progressive) pipeline: per-profile generation (ghosting → I-WNP) with
//!   *all* retained comparisons executed FIFO, independent of input rate.
//! * [`psn`] — LS-PSN and GS-PSN \[36\], the sorted-neighborhood
//!   progressive methods, as additional baselines beyond the paper's
//!   evaluated set.
//!
//! All baselines implement the same [`pier_core::ComparisonEmitter`]
//! interface as the PIER strategies, so every experiment drives every
//! algorithm identically.

#![warn(missing_docs)]

pub mod batch;
pub mod ibase;
pub mod pbs;
pub mod pps;
pub mod psn;

pub use batch::BatchEr;
pub use ibase::IBase;
pub use pbs::Pbs;
pub use pps::{Pps, PpsScope};
pub use psn::{GsPsn, LsPsn};
