//! Deprecated single-blocker entry points.
//!
//! The streaming driver that lived here is now the `shards = 1` shape of
//! the unified [`Pipeline`] (see [`crate::pipeline`]);
//! these wrappers survive one release as thin delegations so existing
//! callers keep compiling with a deprecation warning. Outputs are
//! bit-identical — the equivalence tests in
//! `tests/pipeline_equivalence.rs` pin that.

use std::sync::Arc;

use pier_core::ComparisonEmitter;
use pier_matching::MatchFunction;
use pier_observe::Observer;
use pier_types::{EntityProfile, ErKind};

use crate::pipeline::Pipeline;
use crate::report::{MatchEvent, RuntimeReport};

#[doc(inline)]
pub use crate::pipeline::{default_match_workers, RuntimeConfig};

/// Normalizes the one legacy leniency [`RuntimeConfig::validate`] rejects:
/// the old drivers documented `match_workers: 0` as an alias for `1`.
fn normalized(mut config: RuntimeConfig) -> RuntimeConfig {
    config.match_workers = config.match_workers.max(1);
    config
}

/// Runs `emitter` + `matcher` over `increments` replayed in real time.
#[deprecated(
    since = "0.1.0",
    note = "build a `Pipeline` instead: \
            `Pipeline::builder(kind).config(config).emitter(emitter).build()?.run(...)`"
)]
pub fn run_streaming(
    kind: ErKind,
    increments: Vec<Vec<EntityProfile>>,
    emitter: Box<dyn ComparisonEmitter + Send>,
    matcher: Arc<dyn MatchFunction>,
    config: RuntimeConfig,
    on_match: impl FnMut(MatchEvent),
) -> RuntimeReport {
    Pipeline::builder(kind)
        .config(normalized(config))
        .emitter(emitter)
        .build()
        .expect("legacy RuntimeConfig validates")
        .run(increments, matcher, on_match)
}

/// [`run_streaming`] with a pipeline observer attached to every component.
#[deprecated(
    since = "0.1.0",
    note = "observation is always on in `Pipeline`: pass sinks via \
            `.observe(label, sink)` / `.observers(set)` \
            (an empty set is the zero-cost disabled default)"
)]
pub fn run_streaming_observed(
    kind: ErKind,
    increments: Vec<Vec<EntityProfile>>,
    emitter: Box<dyn ComparisonEmitter + Send>,
    matcher: Arc<dyn MatchFunction>,
    config: RuntimeConfig,
    observer: Observer,
    on_match: impl FnMut(MatchEvent),
) -> RuntimeReport {
    Pipeline::builder(kind)
        .config(normalized(config))
        .emitter(emitter)
        .observers(observer)
        .build()
        .expect("legacy RuntimeConfig validates")
        .run(increments, matcher, on_match)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use pier_core::{Ipes, PierConfig};
    use pier_matching::JaccardMatcher;
    use pier_observe::StatsObserver;
    use pier_types::{ProfileId, SourceId};
    use std::time::Duration;

    fn increments() -> Vec<Vec<EntityProfile>> {
        vec![
            vec![
                EntityProfile::new(ProfileId(0), SourceId(0)).with("t", "alpha beta gamma"),
                EntityProfile::new(ProfileId(1), SourceId(0)).with("t", "alpha beta gamma"),
            ],
            vec![
                EntityProfile::new(ProfileId(2), SourceId(0)).with("t", "delta epsilon"),
                EntityProfile::new(ProfileId(3), SourceId(0)).with("t", "delta epsilon"),
            ],
        ]
    }

    /// The deprecated wrappers still produce the legacy results — the
    /// delegation pin for callers that have not migrated yet (the full
    /// cross-topology matrix lives in `tests/pipeline_equivalence.rs`).
    #[test]
    fn deprecated_wrappers_still_run_the_pipeline() {
        let matcher: Arc<dyn MatchFunction> = Arc::new(JaccardMatcher::default());
        let config = RuntimeConfig {
            interarrival: Duration::from_millis(5),
            deadline: Duration::from_secs(10),
            // `0` was documented as an alias for `1`; the wrapper still
            // accepts it and normalizes before validation.
            match_workers: 0,
            ..RuntimeConfig::default()
        };
        let mut streamed = 0;
        let report = run_streaming(
            ErKind::Dirty,
            increments(),
            Box::new(Ipes::new(PierConfig::default())),
            Arc::clone(&matcher),
            config.clone(),
            |_| streamed += 1,
        );
        assert_eq!(report.matches.len(), 2);
        assert_eq!(streamed, 2);
        assert_eq!(report.match_workers, 1);

        let stats = Arc::new(StatsObserver::new());
        let observed = run_streaming_observed(
            ErKind::Dirty,
            increments(),
            Box::new(Ipes::new(PierConfig::default())),
            matcher,
            config,
            Observer::new(stats.clone()),
            |_| {},
        );
        assert_eq!(observed.matches.len(), 2);
        assert_eq!(stats.snapshot().matches_confirmed, 2);
    }
}
