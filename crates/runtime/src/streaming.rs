//! The threaded streaming pipeline.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel;
use parking_lot::{Mutex, RwLock};

use pier_blocking::{IncrementalBlocker, PurgePolicy};
use pier_core::{AdaptiveK, ComparisonEmitter};
use pier_entity::{ClusterObserver, EntityIndex};
use pier_matching::MatchFunction;
use pier_metrics::{queue::gauged, QueueGauges, Telemetry};
use pier_observe::{Event, Observer, Phase, PipelineObserver};
use pier_types::{EntityProfile, ErKind, SharedTokenDictionary, Tokenizer};

use crate::pool::MatchPool;
use crate::report::{DictionaryStats, MatchEvent, RuntimeReport};
use crate::stages::{
    spawn_source, tokenize_increment, Classifier, ClassifierMetrics, IdleBackoff, MaterializedPair,
};

/// Configuration of a real-time run.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Time between consecutive increments at the source.
    pub interarrival: Duration,
    /// Block purging for the shared blocker.
    pub purge_policy: PurgePolicy,
    /// Initial / minimal / maximal adaptive `K`.
    pub k: (usize, usize, usize),
    /// Safety cap on total comparisons (the pipeline stops afterwards).
    pub max_comparisons: u64,
    /// Hard wall-clock deadline; the pipeline winds down when it passes.
    pub deadline: Duration,
    /// Stage-B match workers evaluating comparisons in parallel. Defaults
    /// to the machine's available parallelism; `1` (or `0`) keeps the
    /// classification loop on the stage-B thread itself, reproducing the
    /// single-threaded executor exactly. Any value emits the identical
    /// match set, event order, and comparison count — only wall-clock
    /// throughput changes.
    pub match_workers: usize,
    /// Live telemetry. When set, the driver tees a
    /// [`pier_metrics::MetricsObserver`] onto the run's observer, attaches
    /// queue-depth/backpressure gauges to every pipeline channel, exposes
    /// the classifier's live comparison count and remaining budget, and
    /// publishes the final report totals into the telemetry's registry —
    /// ready to scrape with a [`pier_metrics::MetricsServer`]. `None`
    /// (the default) adds a single branch per channel operation and
    /// nothing else.
    pub telemetry: Option<Telemetry>,
    /// Incremental entity clustering. When set, the driver tees a
    /// [`pier_entity::ClusterObserver`] onto the run's observer, so every
    /// confirmed match folds into the shared [`EntityIndex`] the moment
    /// the stage-B coordinator emits it — in confirmation order for any
    /// [`RuntimeConfig::match_workers`] count — and the final report
    /// carries an [`pier_entity::EntitySummary`]. Keep a clone of the
    /// `Arc` to query the evolving partition mid-run, e.g. through an
    /// [`pier_entity::EntityServer`]. When [`RuntimeConfig::telemetry`]
    /// is also set, the index additionally maintains `pier_entity_*`
    /// cluster-count/merge-rate gauges in the telemetry registry. `None`
    /// (the default) costs nothing.
    pub entities: Option<Arc<EntityIndex>>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            interarrival: Duration::from_millis(10),
            purge_policy: PurgePolicy::default(),
            k: (64, 4, 65_536),
            max_comparisons: 10_000_000,
            deadline: Duration::from_secs(60),
            match_workers: default_match_workers(),
            telemetry: None,
            entities: None,
        }
    }
}

/// The default for [`RuntimeConfig::match_workers`]: the machine's
/// available parallelism, or `1` when it cannot be determined.
pub fn default_match_workers() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Runs `emitter` + `matcher` over `increments` replayed in real time.
///
/// Blocks the calling thread until the run completes (stream fully
/// consumed and emitter drained) or the deadline/comparison cap is hit,
/// and returns the report. Matches are also delivered incrementally
/// through `on_match` as they are confirmed.
pub fn run_streaming(
    kind: ErKind,
    increments: Vec<Vec<EntityProfile>>,
    emitter: Box<dyn ComparisonEmitter + Send>,
    matcher: Arc<dyn MatchFunction>,
    config: RuntimeConfig,
    on_match: impl FnMut(MatchEvent),
) -> RuntimeReport {
    run_streaming_observed(
        kind,
        increments,
        emitter,
        matcher,
        config,
        Observer::disabled(),
        on_match,
    )
}

/// [`run_streaming`] with a pipeline observer attached to every component.
///
/// The observer is propagated to the blocker, the emitter, and the adaptive
/// `K` controller; the runtime itself reports [`Event::IncrementIngested`],
/// per-stage [`Event::PhaseTiming`] (block/weight on the ingest thread,
/// prune/classify on the matcher thread), and [`Event::MatchConfirmed`].
/// With a disabled observer the run is identical to [`run_streaming`]
/// (no clock reads, no event construction).
///
/// The observer's sink must tolerate concurrent events: stage A and stage B
/// run on different threads (both [`pier_observe::StatsObserver`] and
/// [`pier_observe::JsonlObserver`] are safe).
pub fn run_streaming_observed(
    kind: ErKind,
    increments: Vec<Vec<EntityProfile>>,
    mut emitter: Box<dyn ComparisonEmitter + Send>,
    matcher: Arc<dyn MatchFunction>,
    config: RuntimeConfig,
    observer: Observer,
    mut on_match: impl FnMut(MatchEvent),
) -> RuntimeReport {
    let start = Instant::now();
    let total_profiles: usize = increments.iter().map(Vec::len).sum();
    // Telemetry: tee the metrics bridge onto the caller's observer and
    // instrument the channels; with no telemetry every hook below is a
    // single `None` branch.
    let telemetry = config.telemetry.clone();
    let observer = match &telemetry {
        Some(t) => observer.tee(t.observer() as Arc<dyn PipelineObserver>),
        None => observer,
    };
    let registry = telemetry.as_ref().map(|t| Arc::clone(t.registry()));
    // Entity clustering: tee the match sink onto the observer so every
    // MatchConfirmed (emitted by the stage-B coordinator in confirmation
    // order) folds into the shared index as it happens.
    let entities = config.entities.clone();
    let observer = match &entities {
        Some(index) => observer.tee(Arc::new(ClusterObserver::with_registry(
            Arc::clone(index),
            registry.as_deref(),
        )) as Arc<dyn PipelineObserver>),
        None => observer,
    };
    let dictionary = SharedTokenDictionary::new();
    let mut initial_blocker = IncrementalBlocker::with_shared_dictionary(
        kind,
        Tokenizer::default(),
        config.purge_policy,
        dictionary.clone(),
    );
    initial_blocker.set_observer(observer.clone());
    emitter.set_observer(observer.clone());
    let blocker = Arc::new(RwLock::new(initial_blocker));
    let inc_gauges = registry
        .as_ref()
        .map(|r| QueueGauges::register(r, &[("queue", "increments")], Some(1024)));
    let (inc_tx, inc_rx) = gauged(channel::bounded::<Vec<EntityProfile>>(1024), inc_gauges);
    let match_gauges = registry
        .as_ref()
        .map(|r| QueueGauges::register(r, &[("queue", "matches")], None));
    let (match_tx, match_rx) = gauged(channel::unbounded::<MatchEvent>(), match_gauges);
    let ingest_done = Arc::new(AtomicBool::new(false));
    let shutdown = Arc::new(AtomicBool::new(false));
    let executed_total = Arc::new(AtomicU64::new(0));
    let token_occurrences = Arc::new(AtomicU64::new(0));
    let ingest_errors = Arc::new(Mutex::new(Vec::<String>::new()));
    let match_workers = config.match_workers.max(1);
    let worker_comparisons = Arc::new(Mutex::new(Vec::<u64>::new()));
    let adaptive = {
        let mut k = AdaptiveK::new(config.k.0, config.k.1, config.k.2);
        k.set_observer(observer.clone());
        Arc::new(Mutex::new(k))
    };

    // Source: replay increments at the configured rate.
    let source = spawn_source(
        increments,
        config.interarrival,
        Arc::clone(&shutdown),
        move |_seq, inc| inc_tx.send(inc).is_ok(),
    );

    // The emitter is owned by a dedicated mutex shared by stages A and B.
    let emitter_slot: Arc<Mutex<&mut (dyn ComparisonEmitter + Send)>> =
        Arc::new(Mutex::new(emitter.as_mut()));

    let mut matches: Vec<MatchEvent> = Vec::new();

    std::thread::scope(|scope| {
        // Stage A: tokenize/intern outside the blocker lock, then block +
        // update the prioritizer.
        {
            let blocker = Arc::clone(&blocker);
            let emitter_slot = Arc::clone(&emitter_slot);
            let ingest_done = Arc::clone(&ingest_done);
            let adaptive = Arc::clone(&adaptive);
            let dictionary = dictionary.clone();
            let token_occurrences = Arc::clone(&token_occurrences);
            let ingest_errors = Arc::clone(&ingest_errors);
            let observer = observer.clone();
            scope.spawn(move || {
                let tokenizer = Tokenizer::default();
                let mut scratch = String::new();
                let mut occurrences = 0u64;
                for (seq, inc) in inc_rx.iter().enumerate() {
                    adaptive
                        .lock()
                        .record_arrival(start.elapsed().as_secs_f64());
                    let t0 = observer.is_enabled().then(Instant::now);
                    // Interning happens here, before the write lock: stage B
                    // keeps reading the blocker while token strings are
                    // hashed/allocated exactly once for the whole pipeline.
                    let tokenized =
                        tokenize_increment(&dictionary, &tokenizer, seq as u64, inc, &mut scratch);
                    let mut ids = Vec::with_capacity(tokenized.len());
                    let mut blocker = blocker.write();
                    for tp in tokenized.profiles {
                        let tokens_in_profile = tp.tokens.len() as u64;
                        match blocker.try_process_profile_with_token_ids(tp.profile, &tp.tokens) {
                            Ok(id) => {
                                occurrences += tokens_in_profile;
                                ids.push(id);
                            }
                            Err(e) => ingest_errors.lock().push(e.to_string()),
                        }
                    }
                    if let Some(t0) = t0 {
                        observer.emit(|| Event::PhaseTiming {
                            phase: Phase::Block,
                            secs: t0.elapsed().as_secs_f64(),
                        });
                    }
                    let t1 = observer.is_enabled().then(Instant::now);
                    let mut emitter = emitter_slot.lock();
                    emitter.on_increment(&blocker, &ids);
                    let _ = emitter.drain_ops();
                    if let Some(t1) = t1 {
                        observer.emit(|| Event::PhaseTiming {
                            phase: Phase::Weight,
                            secs: t1.elapsed().as_secs_f64(),
                        });
                    }
                    observer.emit(|| Event::IncrementIngested {
                        seq: tokenized.seq,
                        profiles: ids.len(),
                    });
                }
                token_occurrences.store(occurrences, Ordering::SeqCst);
                ingest_done.store(true, Ordering::SeqCst);
            });
        }

        // Stage B: pull batches, classify, emit match events.
        {
            let blocker = Arc::clone(&blocker);
            let emitter_slot = Arc::clone(&emitter_slot);
            let ingest_done = Arc::clone(&ingest_done);
            let adaptive = Arc::clone(&adaptive);
            let matcher = Arc::clone(&matcher);
            let shutdown = Arc::clone(&shutdown);
            let executed_total = Arc::clone(&executed_total);
            let max_comparisons = config.max_comparisons;
            let deadline = config.deadline;
            let observer = observer.clone();
            let worker_comparisons = Arc::clone(&worker_comparisons);
            let registry = registry.clone();
            scope.spawn(move || {
                let mut pool = (match_workers > 1).then(|| {
                    MatchPool::new(
                        match_workers,
                        Arc::clone(&matcher),
                        &observer,
                        registry.as_deref(),
                    )
                });
                let mut backoff = IdleBackoff::new();
                let mut classifier = Classifier {
                    start,
                    deadline,
                    max_comparisons,
                    matcher: matcher.as_ref(),
                    observer: &observer,
                    match_tx,
                    metrics: registry.as_deref().map(|r| {
                        ClassifierMetrics::register(r, max_comparisons, match_workers <= 1)
                    }),
                    executed: 0,
                };
                loop {
                    if classifier.over_budget() {
                        break;
                    }
                    let k = adaptive.lock().k();
                    // Pull under locks, then materialize the pairs so
                    // classification runs lock-free. Materializing is four
                    // refcount bumps per pair, not a deep clone.
                    let batch: Vec<MaterializedPair> = {
                        let blocker = blocker.read();
                        let mut emitter = emitter_slot.lock();
                        let t0 = observer.is_enabled().then(Instant::now);
                        let cmps = emitter.next_batch(&blocker, k);
                        if let Some(t0) = t0 {
                            observer.emit(|| Event::PhaseTiming {
                                phase: Phase::Prune,
                                secs: t0.elapsed().as_secs_f64(),
                            });
                        }
                        let _ = emitter.drain_ops();
                        cmps.into_iter()
                            .map(|c| MaterializedPair {
                                profile_a: blocker.profile_handle(c.a),
                                tokens_a: blocker.tokens_handle(c.a),
                                profile_b: blocker.profile_handle(c.b),
                                tokens_b: blocker.tokens_handle(c.b),
                            })
                            .collect()
                    };
                    if batch.is_empty() {
                        // Idle tick (the empty increment of §3.2): lets the
                        // GetComparisons fallback generate work from older
                        // data while the input is quiet. The tick runs on
                        // every pass; only the sleep between unproductive
                        // ticks backs off.
                        let tick_made_work = {
                            let blocker = blocker.read();
                            let mut emitter = emitter_slot.lock();
                            emitter.on_increment(&blocker, &[]);
                            emitter.drain_ops() > 0 || emitter.has_pending()
                        };
                        if tick_made_work {
                            backoff.reset();
                        } else {
                            if ingest_done.load(Ordering::SeqCst) {
                                break;
                            }
                            backoff.sleep();
                        }
                        continue;
                    }
                    backoff.reset();
                    classifier.classify_batch(batch, &adaptive, pool.as_mut());
                }
                executed_total.store(classifier.executed, Ordering::SeqCst);
                *worker_comparisons.lock() = match &pool {
                    Some(pool) => pool.executed_per_worker().to_vec(),
                    None => vec![classifier.executed],
                };
                // Stop the source (if still replaying); dropping the
                // classifier's match sender lets the collector finish.
                shutdown.store(true, Ordering::SeqCst);
            });
        }

        // Collector (this thread): stream match events to the caller.
        for event in match_rx.iter() {
            on_match(event);
            matches.push(event);
        }
    });

    let comparisons = executed_total.load(Ordering::SeqCst);
    source.join().expect("source thread never panics");

    let ingest_errors = std::mem::take(&mut *ingest_errors.lock());
    let worker_comparisons = std::mem::take(&mut *worker_comparisons.lock());
    let report = RuntimeReport {
        matches,
        comparisons,
        elapsed: start.elapsed(),
        profiles: total_profiles,
        dictionary: Some(DictionaryStats {
            distinct_tokens: dictionary.len(),
            string_bytes: dictionary.string_bytes(),
            token_occurrences: token_occurrences.load(Ordering::SeqCst),
        }),
        ingest_errors,
        match_workers,
        worker_comparisons,
        entity_summary: entities.as_ref().map(|i| i.summary(total_profiles)),
    };
    if let Some(t) = &telemetry {
        report.publish_final(t);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use pier_core::{Ipes, PierConfig};
    use pier_matching::JaccardMatcher;
    use pier_types::{ProfileId, SourceId};

    fn increments() -> Vec<Vec<EntityProfile>> {
        vec![
            vec![
                EntityProfile::new(ProfileId(0), SourceId(0)).with("t", "alpha beta gamma"),
                EntityProfile::new(ProfileId(1), SourceId(0)).with("t", "alpha beta gamma"),
            ],
            vec![
                EntityProfile::new(ProfileId(2), SourceId(0)).with("t", "delta epsilon"),
                EntityProfile::new(ProfileId(3), SourceId(0)).with("t", "delta epsilon"),
            ],
        ]
    }

    #[test]
    fn pipeline_finds_matches_in_real_time() {
        let emitter = Box::new(Ipes::new(PierConfig::default()));
        let matcher: Arc<dyn MatchFunction> = Arc::new(JaccardMatcher::default());
        let config = RuntimeConfig {
            interarrival: Duration::from_millis(5),
            deadline: Duration::from_secs(10),
            ..RuntimeConfig::default()
        };
        let mut streamed = 0;
        let report = run_streaming(
            ErKind::Dirty,
            increments(),
            emitter,
            matcher,
            config,
            |_| streamed += 1,
        );
        assert_eq!(report.matches.len(), 2);
        assert_eq!(streamed, 2);
        assert_eq!(report.profiles, 4);
        assert!(report.comparisons >= 2);
        assert!(report.ingest_errors.is_empty());
        // Timestamps are non-decreasing and within the run.
        assert!(report.matches.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(report.matches.iter().all(|m| m.at <= report.elapsed));
        // The interned data path reports its dictionary: 5 distinct tokens
        // across 4 profiles with 3+3+2+2 = 10 occurrences.
        let dict = report.dictionary.expect("streaming interns tokens");
        assert_eq!(dict.distinct_tokens, 5);
        assert_eq!(dict.token_occurrences, 10);
        assert!(dict.string_bytes > 0);
        assert!(dict.estimated_bytes_saved() > 0);
    }

    #[test]
    fn second_increment_match_arrives_after_first() {
        let emitter = Box::new(Ipes::new(PierConfig::default()));
        let matcher: Arc<dyn MatchFunction> = Arc::new(JaccardMatcher::default());
        let config = RuntimeConfig {
            interarrival: Duration::from_millis(30),
            deadline: Duration::from_secs(10),
            ..RuntimeConfig::default()
        };
        let report = run_streaming(
            ErKind::Dirty,
            increments(),
            emitter,
            matcher,
            config,
            |_| {},
        );
        let find = |a: u32, b: u32| {
            report
                .matches
                .iter()
                .find(|m| m.pair == pier_types::Comparison::new(ProfileId(a), ProfileId(b)))
                .map(|m| m.at)
                .expect("match found")
        };
        // The pair from the delayed increment cannot precede its arrival.
        assert!(find(2, 3) >= Duration::from_millis(30));
        assert!(find(2, 3) > find(0, 1));
    }

    #[test]
    fn observed_run_reports_pipeline_events() {
        use pier_observe::StatsObserver;
        use pier_types::GroundTruth;

        let gt =
            GroundTruth::from_pairs([(ProfileId(0), ProfileId(1)), (ProfileId(2), ProfileId(3))]);
        let stats = Arc::new(StatsObserver::with_ground_truth(gt));
        let emitter = Box::new(Ipes::new(PierConfig::default()));
        let matcher: Arc<dyn MatchFunction> = Arc::new(JaccardMatcher::default());
        let config = RuntimeConfig {
            interarrival: Duration::from_millis(5),
            deadline: Duration::from_secs(10),
            ..RuntimeConfig::default()
        };
        let report = run_streaming_observed(
            ErKind::Dirty,
            increments(),
            emitter,
            matcher,
            config,
            Observer::new(stats.clone()),
            |_| {},
        );
        let snap = stats.snapshot();
        assert_eq!(snap.increments, 2);
        assert_eq!(snap.profiles, 4);
        assert!(snap.blocks_built > 0);
        assert!(snap.comparisons_emitted >= 2);
        assert_eq!(snap.matches_confirmed as usize, report.matches.len());
        // The live PC timeline credits both ground-truth pairs.
        assert_eq!(snap.pc, Some(1.0));
        // Block and weight phases ran once per increment; prune/classify at
        // least once per batch.
        assert!(snap.phases.iter().all(|ph| ph.count >= 1));
    }

    #[test]
    fn telemetry_counters_equal_the_report() {
        let telemetry = Telemetry::new();
        let registry = Arc::clone(telemetry.registry());
        let emitter = Box::new(Ipes::new(PierConfig::default()));
        let matcher: Arc<dyn MatchFunction> = Arc::new(JaccardMatcher::default());
        let config = RuntimeConfig {
            interarrival: Duration::from_millis(5),
            deadline: Duration::from_secs(10),
            telemetry: Some(telemetry),
            ..RuntimeConfig::default()
        };
        let report = run_streaming(
            ErKind::Dirty,
            increments(),
            emitter,
            matcher,
            config,
            |_| {},
        );
        let counter = |name: &str| registry.counter(name, "", &[]).get();
        assert_eq!(counter("pier_comparisons_total"), report.comparisons);
        assert_eq!(
            counter("pier_matches_confirmed_total"),
            report.matches.len() as u64
        );
        assert_eq!(counter("pier_profiles_total"), report.profiles as u64);
        assert_eq!(counter("pier_increments_total"), 2);
        for (worker, &want) in report.worker_comparisons.iter().enumerate() {
            let label = worker.to_string();
            let got = registry
                .counter(
                    "pier_worker_comparisons_total",
                    "",
                    &[("worker", label.as_str())],
                )
                .get();
            assert_eq!(got, want, "worker {worker}");
        }
        // The budget gauge burned down by exactly the executed comparisons.
        let budget = registry.gauge("pier_budget_remaining", "", &[]).get();
        assert_eq!(budget, 10_000_000 - report.comparisons as i64);
        // The run's channels drained and the final totals were published.
        let depth = |queue: &str| {
            registry
                .gauge("pier_queue_depth", "", &[("queue", queue)])
                .get()
        };
        assert_eq!(depth("matches"), 0);
        assert_eq!(depth("increments"), 0);
        assert!(
            registry
                .counter("pier_queue_sends_total", "", &[("queue", "increments")])
                .get()
                >= 2
        );
        let elapsed = registry
            .float_gauge("pier_run_elapsed_seconds", "", &[])
            .get();
        assert!((elapsed - report.elapsed.as_secs_f64()).abs() < 1e-9);
        assert_eq!(
            registry.gauge("pier_run_matches", "", &[]).get(),
            report.matches.len() as i64
        );
    }

    #[test]
    fn entity_index_clusters_the_match_stream() {
        let emitter = Box::new(Ipes::new(PierConfig::default()));
        let matcher: Arc<dyn MatchFunction> = Arc::new(JaccardMatcher::default());
        let index = EntityIndex::shared();
        let config = RuntimeConfig {
            interarrival: Duration::from_millis(5),
            deadline: Duration::from_secs(10),
            entities: Some(Arc::clone(&index)),
            ..RuntimeConfig::default()
        };
        let report = run_streaming(
            ErKind::Dirty,
            increments(),
            emitter,
            matcher,
            config,
            |_| {},
        );
        // The index saw exactly the report's matches, already closed.
        assert_eq!(index.stats().matches_applied, report.matches.len() as u64);
        assert!(index.same_entity(ProfileId(0), ProfileId(1)));
        assert!(index.same_entity(ProfileId(2), ProfileId(3)));
        assert!(!index.same_entity(ProfileId(0), ProfileId(2)));
        let summary = report.entity_summary.expect("entities configured");
        assert_eq!(summary.clusters, 2);
        assert_eq!(summary.matched_profiles, 4);
        assert_eq!(summary.singletons, 0);
        assert_eq!(summary.max_size, 2);
        assert_eq!(summary.matches_applied, report.matches.len() as u64);
    }

    #[test]
    fn duplicate_profile_is_reported_not_fatal() {
        let emitter = Box::new(Ipes::new(PierConfig::default()));
        let matcher: Arc<dyn MatchFunction> = Arc::new(JaccardMatcher::default());
        let config = RuntimeConfig {
            interarrival: Duration::from_millis(5),
            deadline: Duration::from_secs(10),
            ..RuntimeConfig::default()
        };
        // Profile 0 arrives twice; the second copy must be skipped without
        // killing the stage-A thread, and the true pair still matches.
        let increments = vec![
            vec![
                EntityProfile::new(ProfileId(0), SourceId(0)).with("t", "alpha beta gamma"),
                EntityProfile::new(ProfileId(1), SourceId(0)).with("t", "alpha beta gamma"),
            ],
            vec![EntityProfile::new(ProfileId(0), SourceId(0)).with("t", "alpha zeta")],
        ];
        let report = run_streaming(ErKind::Dirty, increments, emitter, matcher, config, |_| {});
        assert_eq!(report.ingest_errors.len(), 1);
        assert!(report.ingest_errors[0].contains("profile 0 ingested twice"));
        assert_eq!(report.matches.len(), 1);
        // Only accepted profiles count occurrences (3 + 3).
        assert_eq!(report.dictionary.unwrap().token_occurrences, 6);
    }

    #[test]
    fn deadline_stops_the_pipeline() {
        let emitter = Box::new(Ipes::new(PierConfig::default()));
        let matcher: Arc<dyn MatchFunction> = Arc::new(JaccardMatcher::default());
        let config = RuntimeConfig {
            interarrival: Duration::from_millis(200),
            deadline: Duration::from_millis(50),
            ..RuntimeConfig::default()
        };
        // 100 increments at 200ms each would take 20s; the deadline cuts in.
        let many: Vec<Vec<EntityProfile>> = (0..100u32)
            .map(|i| {
                vec![EntityProfile::new(ProfileId(i), SourceId(0))
                    .with("t", format!("tok{i} tok{}", i / 2))]
            })
            .collect();
        let report = run_streaming(ErKind::Dirty, many, emitter, matcher, config, |_| {});
        assert!(report.elapsed < Duration::from_secs(25));
    }
}
