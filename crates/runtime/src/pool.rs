//! The parallel stage-B match executor.
//!
//! A `MatchPool` (crate-private; configured through
//! [`RuntimeConfig::match_workers`](crate::RuntimeConfig::match_workers))
//! owns `N` long-lived worker threads that fan out over
//! each materialized batch: the coordinator (the stage-B thread) splits
//! the batch into `N` contiguous chunks ([`chunk_ranges`]), ships chunk
//! `i` to worker `i` over its private job channel, and collects replies
//! from one shared reply channel. Replies carry their chunk index, so the
//! coordinator re-sequences outcomes into the original batch order before
//! emitting anything — `MatchEvent`s, `MatchConfirmed` observer events and
//! budget accounting therefore happen in exactly the order the sequential
//! executor would have produced.
//!
//! Workers never emit match events themselves. They only time their own
//! chunk (a worker-tagged [`Phase::Classify`] timing, routed to per-worker
//! accounting by [`pier_observe::StatsObserver`]) and return raw
//! [`MatchOutcome`]s. All externally visible effects stay on the
//! coordinator, which is what makes a `match_workers = N` run emit the
//! identical match set and comparison count as `match_workers = 1`.
//!
//! The channels are the vendored `crossbeam` shim (std `mpsc` underneath),
//! whose receivers are single-consumer — hence one job channel *per
//! worker* plus one shared reply channel, rather than a single shared job
//! queue.

use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel;

use pier_chaos::{ChaosHandle, FaultPoint};
use pier_matching::{MatchFunction, MatchInput, MatchOutcome};
use pier_metrics::{
    queue::gauged, Counter, GaugedReceiver, GaugedSender, MetricsRegistry, QueueGauges,
};
use pier_observe::{Event, Observer, Phase, WorkerRole};
use pier_types::Comparison;

use crate::stages::{MaterializedPair, WORKER_COMPARISONS_HELP};
use crate::supervisor::Supervisor;

/// One evaluated pair: the matcher's verdict plus the worker that ran it
/// (so the coordinator can attribute the confirmation to that worker).
pub(crate) struct Evaluated {
    /// The matcher's verdict for the pair.
    pub outcome: MatchOutcome,
    /// Index of the worker that evaluated the pair.
    pub worker: u16,
}

/// A chunk of one batch, shipped to a single worker. The batch is shared
/// by `Arc` — fanning out clones refcounts, never profiles.
struct Job {
    batch: Arc<Vec<MaterializedPair>>,
    start: usize,
    end: usize,
    chunk: usize,
}

/// A worker's outcomes for one chunk, keyed for re-sequencing.
struct Reply {
    chunk: usize,
    worker: usize,
    outcomes: Vec<MatchOutcome>,
    panicked: bool,
}

/// Splits `len` items into `chunks` contiguous near-equal ranges: the
/// first `len % chunks` ranges get one extra item. Ranges are returned in
/// order and cover `0..len` exactly; when `len < chunks` the tail ranges
/// are empty.
pub fn chunk_ranges(len: usize, chunks: usize) -> Vec<(usize, usize)> {
    let chunks = chunks.max(1);
    let base = len / chunks;
    let extra = len % chunks;
    let mut ranges = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let size = base + usize::from(i < extra);
        ranges.push((start, start + size));
        start += size;
    }
    ranges
}

/// A pool of stage-B match workers (see the module docs).
///
/// Dropping the pool closes the job channels and joins every worker.
pub(crate) struct MatchPool {
    job_txs: Vec<GaugedSender<Job>>,
    reply_tx: GaugedSender<Reply>,
    reply_rx: GaugedReceiver<Reply>,
    handles: Vec<Option<std::thread::JoinHandle<()>>>,
    executed: Vec<u64>,
    /// Live `pier_worker_comparisons_total{worker=i}` counters, kept in
    /// lock-step with `executed` when telemetry is attached.
    counters: Option<Vec<Arc<Counter>>>,
    // Everything a respawn needs: a dead worker is replaced with a fresh
    // thread + job channel built from the same ingredients as the original.
    matcher: Arc<dyn MatchFunction>,
    observer: Observer,
    registry: Option<Arc<MetricsRegistry>>,
    chaos: ChaosHandle,
    supervisor: Arc<Supervisor>,
}

impl MatchPool {
    /// Spawns `workers` match workers sharing `matcher`. Each worker
    /// observes through a worker-tagged clone of `observer`. With a
    /// `registry`, every job channel gets queue gauges
    /// (`queue="match_jobs"`, `worker=i`), the shared reply channel gets
    /// `queue="match_replies"`, and per-worker comparison counters mirror
    /// [`MatchPool::executed_per_worker`] exactly.
    pub fn new(
        workers: usize,
        matcher: Arc<dyn MatchFunction>,
        observer: &Observer,
        registry: Option<Arc<MetricsRegistry>>,
        chaos: ChaosHandle,
        supervisor: Arc<Supervisor>,
    ) -> MatchPool {
        let workers = workers.max(1);
        let reply_gauges = registry
            .as_deref()
            .map(|r| QueueGauges::register(r, &[("queue", "match_replies")], None));
        let (reply_tx, reply_rx) = gauged(channel::unbounded::<Reply>(), reply_gauges);
        let mut counters = registry.as_deref().map(|_| Vec::with_capacity(workers));
        if let (Some(counters), Some(r)) = (&mut counters, registry.as_deref()) {
            for worker in 0..workers {
                let label = worker.to_string();
                counters.push(r.counter(
                    "pier_worker_comparisons_total",
                    WORKER_COMPARISONS_HELP,
                    &[("worker", label.as_str())],
                ));
            }
        }
        let mut pool = MatchPool {
            job_txs: Vec::with_capacity(workers),
            reply_tx,
            reply_rx,
            handles: Vec::with_capacity(workers),
            executed: vec![0; workers],
            counters,
            matcher,
            observer: observer.clone(),
            registry,
            chaos,
            supervisor,
        };
        for worker in 0..workers {
            let (job_tx, handle) = pool.spawn_worker(worker);
            pool.job_txs.push(job_tx);
            pool.handles.push(Some(handle));
        }
        pool
    }

    /// Builds worker `worker`'s job channel and thread — used both at pool
    /// construction and to replace a worker that died mid-run.
    fn spawn_worker(&self, worker: usize) -> (GaugedSender<Job>, std::thread::JoinHandle<()>) {
        let label = worker.to_string();
        let job_gauges = self.registry.as_deref().map(|r| {
            QueueGauges::register(
                r,
                &[("queue", "match_jobs"), ("worker", label.as_str())],
                None,
            )
        });
        let (job_tx, job_rx) = gauged(channel::unbounded::<Job>(), job_gauges);
        let matcher = Arc::clone(&self.matcher);
        let observer = self.observer.for_worker(worker as u16);
        let reply_tx = self.reply_tx.clone();
        let chaos = self.chaos.clone();
        let handle = std::thread::Builder::new()
            .name(format!("pier-match-{worker}"))
            .spawn(move || worker_loop(worker, &job_rx, &reply_tx, &*matcher, &observer, &chaos))
            .expect("spawning a match worker thread succeeds");
        (job_tx, handle)
    }

    /// Replaces a dead worker: joins its corpse, spawns a fresh thread on
    /// a fresh job channel, and accounts the restart.
    fn restart_worker(&mut self, worker: usize, died_at: Instant) {
        if let Some(handle) = self.handles[worker].take() {
            let _ = handle.join();
        }
        let (job_tx, handle) = self.spawn_worker(worker);
        self.job_txs[worker] = job_tx;
        self.handles[worker] = Some(handle);
        self.supervisor.worker_restarted(
            WorkerRole::Match,
            worker as u16,
            died_at.elapsed().as_secs_f64(),
            &self.observer,
        );
    }

    /// Fallback evaluation of one chunk on the coordinator after its
    /// worker died: each pair runs under `catch_unwind`, and a pair that
    /// panics again is quarantined (dead-lettered) and substituted with a
    /// non-match — keeping the outcome list aligned with the batch and the
    /// executed count identical to a fault-free run.
    fn evaluate_chunk_here(
        &self,
        batch: &[MaterializedPair],
        start: usize,
        end: usize,
    ) -> Vec<MatchOutcome> {
        batch[start..end]
            .iter()
            .map(|pair| {
                let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    self.matcher.evaluate(MatchInput {
                        profile_a: &pair.profile_a,
                        tokens_a: &pair.tokens_a,
                        profile_b: &pair.profile_b,
                        tokens_b: &pair.tokens_b,
                    })
                }));
                attempt.unwrap_or_else(|_| {
                    self.supervisor.quarantine_pair(
                        Comparison::new(pair.profile_a.id, pair.profile_b.id),
                        &self.observer,
                    );
                    MatchOutcome {
                        is_match: false,
                        similarity: 0.0,
                        ops: 0,
                    }
                })
            })
            .collect()
    }

    /// Number of workers in the pool.
    pub fn workers(&self) -> usize {
        self.job_txs.len()
    }

    /// Comparisons evaluated by each worker so far, indexed by worker.
    pub fn executed_per_worker(&self) -> &[u64] {
        &self.executed
    }

    /// Evaluates one batch across the pool and returns the outcomes in the
    /// batch's original order, each tagged with the worker that ran it.
    ///
    /// Blocks until every chunk is back. The whole batch is always
    /// evaluated — budget enforcement happens afterwards, on the
    /// coordinator, exactly as in the sequential path.
    /// Credits `n` evaluated pairs to `worker` (report + live counter).
    fn account(&mut self, worker: usize, n: usize) {
        self.executed[worker] += n as u64;
        if let Some(counters) = &self.counters {
            counters[worker].add(n as u64);
        }
    }

    pub fn evaluate(&mut self, batch: &Arc<Vec<MaterializedPair>>) -> Vec<Evaluated> {
        let ranges = chunk_ranges(batch.len(), self.workers());
        let mut slots: Vec<Option<Reply>> = (0..ranges.len()).map(|_| None).collect();
        let mut outstanding = 0usize;
        for (chunk, &(start, end)) in ranges.iter().enumerate() {
            if start == end {
                continue;
            }
            let job = Job {
                batch: Arc::clone(batch),
                start,
                end,
                chunk,
            };
            // Chunk i always rides worker i's private channel. A closed
            // channel means the worker is dead: respawn it and retry once;
            // if it still cannot accept work, the coordinator evaluates
            // the chunk itself rather than losing it.
            if self.job_txs[chunk].send(job).is_err() {
                self.restart_worker(chunk, Instant::now());
                let retry = Job {
                    batch: Arc::clone(batch),
                    start,
                    end,
                    chunk,
                };
                if self.job_txs[chunk].send(retry).is_err() {
                    let outcomes = self.evaluate_chunk_here(batch, start, end);
                    self.account(chunk, outcomes.len());
                    slots[chunk] = Some(Reply {
                        chunk,
                        worker: chunk,
                        outcomes,
                        panicked: false,
                    });
                    continue;
                }
            }
            outstanding += 1;
        }
        // The pool holds its own `reply_tx`, so the reply channel can
        // never disconnect; every outstanding chunk produces exactly one
        // reply (workers answer even a panic with a poisoned reply).
        while outstanding > 0 {
            let Ok(reply) = self.reply_rx.recv() else {
                break;
            };
            outstanding -= 1;
            if !reply.panicked {
                let chunk = reply.chunk;
                self.account(reply.worker, reply.outcomes.len());
                slots[chunk] = Some(reply);
                continue;
            }
            // The worker died mid-chunk and is unwinding. Re-evaluate the
            // whole chunk on the coordinator (quarantining any pair that
            // panics again), credit it to the dead worker so per-worker
            // counts match a fault-free run, and respawn the worker.
            let died_at = Instant::now();
            let (start, end) = ranges[reply.chunk];
            let outcomes = self.evaluate_chunk_here(batch, start, end);
            self.account(reply.worker, outcomes.len());
            slots[reply.chunk] = Some(Reply {
                chunk: reply.chunk,
                worker: reply.worker,
                outcomes,
                panicked: false,
            });
            self.restart_worker(reply.worker, died_at);
        }
        let mut out = Vec::with_capacity(batch.len());
        for reply in slots.into_iter().flatten() {
            let worker = reply.worker as u16;
            out.extend(
                reply
                    .outcomes
                    .into_iter()
                    .map(|outcome| Evaluated { outcome, worker }),
            );
        }
        out
    }
}

impl Drop for MatchPool {
    fn drop(&mut self) {
        // Closing the job channels ends each worker's receive loop.
        self.job_txs.clear();
        for handle in self.handles.drain(..).flatten() {
            let _ = handle.join();
        }
    }
}

/// One worker's receive loop: evaluate the chunk, report a worker-tagged
/// classify timing, reply. A panicking matcher still produces a (poisoned)
/// reply so the coordinator fails loudly instead of deadlocking.
fn worker_loop(
    worker: usize,
    job_rx: &GaugedReceiver<Job>,
    reply_tx: &GaugedSender<Reply>,
    matcher: &dyn MatchFunction,
    observer: &Observer,
    chaos: &ChaosHandle,
) {
    for job in job_rx.iter() {
        let t0 = observer.is_enabled().then(Instant::now);
        let outcomes = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // Fires at chunk entry, inside the unwind guard: an injected
            // panic takes the same poisoned-reply path a real one would.
            chaos.trip(FaultPoint::MatchWorker, Some(worker as u16));
            job.batch[job.start..job.end]
                .iter()
                .map(|pair| {
                    matcher.evaluate(MatchInput {
                        profile_a: &pair.profile_a,
                        tokens_a: &pair.tokens_a,
                        profile_b: &pair.profile_b,
                        tokens_b: &pair.tokens_b,
                    })
                })
                .collect::<Vec<MatchOutcome>>()
        }));
        if let Some(t0) = t0 {
            observer.emit(|| Event::PhaseTiming {
                phase: Phase::Classify,
                secs: t0.elapsed().as_secs_f64(),
            });
        }
        match outcomes {
            Ok(outcomes) => {
                let reply = Reply {
                    chunk: job.chunk,
                    worker,
                    outcomes,
                    panicked: false,
                };
                if reply_tx.send(reply).is_err() {
                    break;
                }
            }
            Err(payload) => {
                let _ = reply_tx.send(Reply {
                    chunk: job.chunk,
                    worker,
                    outcomes: Vec::new(),
                    panicked: true,
                });
                std::panic::resume_unwind(payload);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pier_types::{EntityProfile, ProfileId, SourceId, TokenId};

    fn pair(a: u32, b: u32, same: bool) -> MaterializedPair {
        let text_a = "alpha beta gamma";
        let text_b = if same {
            "alpha beta gamma"
        } else {
            "zzz yyy xxx www"
        };
        let tokens =
            |x: u32| -> Arc<[TokenId]> { Arc::from(vec![TokenId(x), TokenId(x + 1)].as_slice()) };
        MaterializedPair {
            profile_a: Arc::new(EntityProfile::new(ProfileId(a), SourceId(0)).with("t", text_a)),
            tokens_a: tokens(a),
            profile_b: Arc::new(EntityProfile::new(ProfileId(b), SourceId(0)).with("t", text_b)),
            tokens_b: tokens(b),
        }
    }

    #[test]
    fn chunk_ranges_cover_the_batch_contiguously() {
        for len in 0..40usize {
            for chunks in 1..8usize {
                let ranges = chunk_ranges(len, chunks);
                assert_eq!(ranges.len(), chunks);
                let mut next = 0;
                for &(start, end) in &ranges {
                    assert_eq!(start, next);
                    assert!(end >= start);
                    next = end;
                }
                assert_eq!(next, len);
                // Near-equal: sizes differ by at most one, larger first.
                let sizes: Vec<usize> = ranges.iter().map(|&(s, e)| e - s).collect();
                assert!(sizes.windows(2).all(|w| w[0] >= w[1]));
                assert!(sizes[0] - sizes[chunks - 1] <= 1);
            }
        }
        assert_eq!(chunk_ranges(10, 0), vec![(0, 10)]);
    }

    #[test]
    fn pool_preserves_batch_order_and_counts_per_worker() {
        use pier_matching::EditDistanceMatcher;

        let matcher: Arc<dyn MatchFunction> = Arc::new(EditDistanceMatcher::default());
        let mut pool = MatchPool::new(
            3,
            Arc::clone(&matcher),
            &Observer::disabled(),
            None,
            ChaosHandle::disabled(),
            Arc::new(Supervisor::new()),
        );
        // Pair i matches iff i is even; order must survive the fan-out.
        let batch: Vec<MaterializedPair> = (0..20u32)
            .map(|i| pair(2 * i, 2 * i + 1, i % 2 == 0))
            .collect();
        let batch = Arc::new(batch);
        let evaluated = pool.evaluate(&batch);
        assert_eq!(evaluated.len(), 20);
        for (i, ev) in evaluated.iter().enumerate() {
            assert_eq!(ev.outcome.is_match, i % 2 == 0, "pair {i}");
            assert!((ev.worker as usize) < 3);
        }
        // Chunk i went to worker i: 7 + 7 + 6 with the larger chunks first.
        assert_eq!(pool.executed_per_worker(), &[7, 7, 6]);
        // A second batch accumulates.
        pool.evaluate(&Arc::new(vec![pair(100, 101, true)]));
        assert_eq!(pool.executed_per_worker(), &[8, 7, 6]);
    }

    #[test]
    fn empty_batch_needs_no_replies() {
        use pier_matching::EditDistanceMatcher;

        let matcher: Arc<dyn MatchFunction> = Arc::new(EditDistanceMatcher::default());
        let mut pool = MatchPool::new(
            2,
            matcher,
            &Observer::disabled(),
            None,
            ChaosHandle::disabled(),
            Arc::new(Supervisor::new()),
        );
        assert!(pool.evaluate(&Arc::new(Vec::new())).is_empty());
        assert_eq!(pool.executed_per_worker(), &[0, 0]);
    }

    #[test]
    fn registry_counters_mirror_per_worker_execution() {
        use pier_matching::EditDistanceMatcher;

        let registry = MetricsRegistry::shared();
        let matcher: Arc<dyn MatchFunction> = Arc::new(EditDistanceMatcher::default());
        let mut pool = MatchPool::new(
            2,
            matcher,
            &Observer::disabled(),
            Some(Arc::clone(&registry)),
            ChaosHandle::disabled(),
            Arc::new(Supervisor::new()),
        );
        let batch: Vec<MaterializedPair> =
            (0..9u32).map(|i| pair(2 * i, 2 * i + 1, true)).collect();
        pool.evaluate(&Arc::new(batch));
        for (worker, &executed) in pool.executed_per_worker().iter().enumerate() {
            let label = worker.to_string();
            let counter = registry.counter(
                "pier_worker_comparisons_total",
                "",
                &[("worker", label.as_str())],
            );
            assert_eq!(counter.get(), executed, "worker {worker}");
        }
        // The job queues drained back to zero depth and counted their sends.
        let depth = registry.gauge(
            "pier_queue_depth",
            "",
            &[("queue", "match_jobs"), ("worker", "0")],
        );
        assert_eq!(depth.get(), 0);
        let sends = registry.counter(
            "pier_queue_sends_total",
            "",
            &[("queue", "match_jobs"), ("worker", "0")],
        );
        assert_eq!(sends.get(), 1);
    }
}
