//! The threaded sharded streaming pipeline: one thread per stage-A shard
//! plus a merging stage B, wired with crossbeam channels.
//!
//! Layout (cf. [`crate::run_streaming`]'s two stages):
//!
//! ```text
//! source ──▶ tokenizer 0..T ──▶ router/ingest ──▶ shard worker 0 ─┐
//!            (tokenize+intern    (store, ghost     shard worker 1 ─┼─▶ merger + classify
//!             in parallel)        floors, fan out) ...            ─┘    (k-way merge, CF)
//! ```
//!
//! Tokenization is the dominant *serial* cost of routing, so it runs on a
//! pool of `T = shards` tokenizer threads: the source dispatches increment
//! `seq` to tokenizer `seq % T` round-robin, and the router collects from
//! channel `seq % T` in the same order — increment order is preserved
//! without any `select`. Every pool thread interns into the router's
//! [`SharedTokenDictionary`], so each token string is hashed/allocated once
//! for the whole pipeline and everything downstream — the global
//! [`ProfileStore`], the id-hash router, the shard blockers, the matcher —
//! speaks dense [`pier_types::TokenId`]s. The router then inserts the whole
//! increment into the store (skipping and reporting duplicate profile ids
//! instead of panicking), computes each profile's ghost floor (its global
//! minimum block size, which shard-local block lists cannot see) and fans
//! attribute-less skeletons out to the owning shards.
//!
//! Each shard worker owns a [`ShardWorker`] (private blocker + unchanged
//! PIER emitter over its token subspace) and serves three messages over
//! its command channel: `Ingest` from the router thread, `Pull`/`Tick`
//! from the merging stage B. Stage B never sends a second request to a
//! shard before receiving the previous reply, so one reply channel per
//! shard suffices — no `select` needed.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel;
use parking_lot::{Mutex, RwLock};

use pier_core::AdaptiveK;
use pier_entity::ClusterObserver;
use pier_matching::MatchFunction;
use pier_metrics::{queue::gauged, QueueGauges};
use pier_observe::{Event, Observer, Phase, PipelineObserver};
use pier_shard::{ProfileStore, ShardMerger, ShardRouter, ShardWorker, ShardedConfig};
use pier_types::{
    EntityProfile, ErKind, SharedTokenDictionary, TokenId, Tokenizer, WeightedComparison,
};

use crate::pool::MatchPool;
use crate::report::{DictionaryStats, MatchEvent, RuntimeReport};
use crate::stages::{
    spawn_source, tokenize_increment, Classifier, ClassifierMetrics, IdleBackoff, MaterializedPair,
    TokenizedIncrement, TokenizedProfile,
};
use crate::streaming::RuntimeConfig;

/// A command processed by one shard worker thread.
enum ShardMsg {
    /// Routed profiles (skeleton, this shard's token-id subset, ghost
    /// floor) to ingest.
    Ingest(Vec<(EntityProfile, Vec<TokenId>, usize)>),
    /// Request for up to `k` weighted comparisons, best first.
    Pull { k: usize },
    /// The idle tick of §3.2; replies whether the shard did/has work.
    Tick,
}

/// A shard worker's reply to `Pull` or `Tick`.
enum ShardReply {
    Batch(Vec<WeightedComparison>),
    Tick(bool),
}

/// [`crate::run_streaming`] with a hash-partitioned parallel stage A: one
/// thread per shard plus a merging stage B (see the module docs).
///
/// Block purging is governed by `shard_config.purge_policy` (each shard
/// purges against its own collection); `config.purge_policy` is unused
/// here.
pub fn run_streaming_sharded(
    kind: ErKind,
    increments: Vec<Vec<EntityProfile>>,
    shard_config: ShardedConfig,
    matcher: Arc<dyn MatchFunction>,
    config: RuntimeConfig,
    on_match: impl FnMut(MatchEvent),
) -> RuntimeReport {
    run_streaming_sharded_observed(
        kind,
        increments,
        shard_config,
        matcher,
        config,
        Observer::disabled(),
        on_match,
    )
}

/// [`run_streaming_sharded`] with a pipeline observer attached everywhere.
///
/// Shard workers report through shard-tagged handles (so a
/// [`pier_observe::StatsObserver`] breaks blocks/comparisons down per
/// shard and a [`pier_observe::JsonlObserver`] writes a `"shard"` field);
/// the router thread reports `IncrementIngested` and `Phase::Block`
/// (store + ghost floors + fan-out; tokenization runs on the parallel
/// pool) untagged, stage B reports `Phase::Prune` (merge),
/// `Phase::Classify` and `MatchConfirmed`.
pub fn run_streaming_sharded_observed(
    kind: ErKind,
    increments: Vec<Vec<EntityProfile>>,
    shard_config: ShardedConfig,
    matcher: Arc<dyn MatchFunction>,
    config: RuntimeConfig,
    observer: Observer,
    mut on_match: impl FnMut(MatchEvent),
) -> RuntimeReport {
    let start = Instant::now();
    let total_profiles: usize = increments.iter().map(Vec::len).sum();
    let shards = shard_config.shards as usize;
    // Telemetry: tee the metrics bridge onto the caller's observer and
    // instrument every channel of the topology; with no telemetry each
    // hook below is a single `None` branch.
    let telemetry = config.telemetry.clone();
    let observer = match &telemetry {
        Some(t) => observer.tee(t.observer() as Arc<dyn PipelineObserver>),
        None => observer,
    };
    let registry = telemetry.as_ref().map(|t| Arc::clone(t.registry()));
    // Entity clustering: same tee as the streaming driver — stage B emits
    // MatchConfirmed on the coordinator in confirmation order, so the
    // index evolves identically for any shard/worker count.
    let entities = config.entities.clone();
    let observer = match &entities {
        Some(index) => observer.tee(Arc::new(ClusterObserver::with_registry(
            Arc::clone(index),
            registry.as_deref(),
        )) as Arc<dyn PipelineObserver>),
        None => observer,
    };
    let dictionary = SharedTokenDictionary::new();
    let router = ShardRouter::with_dictionary(
        shard_config.shards,
        Tokenizer::default(),
        dictionary.clone(),
    );
    let store = Arc::new(RwLock::new(ProfileStore::new()));
    let match_gauges = registry
        .as_ref()
        .map(|r| QueueGauges::register(r, &[("queue", "matches")], None));
    let (match_tx, match_rx) = gauged(channel::unbounded::<MatchEvent>(), match_gauges);
    let ingest_done = Arc::new(AtomicBool::new(false));
    let shutdown = Arc::new(AtomicBool::new(false));
    let executed_total = Arc::new(AtomicU64::new(0));
    let ingest_errors = Arc::new(Mutex::new(Vec::<String>::new()));
    let match_workers = config.match_workers.max(1);
    let worker_comparisons = Arc::new(Mutex::new(Vec::<u64>::new()));
    let adaptive = {
        let mut k = AdaptiveK::new(config.k.0, config.k.1, config.k.2);
        k.set_observer(observer.clone());
        Arc::new(Mutex::new(k))
    };

    // Per-shard command + reply channels.
    let mut cmd_txs = Vec::with_capacity(shards);
    let mut cmd_rxs = Vec::with_capacity(shards);
    let mut reply_txs = Vec::with_capacity(shards);
    let mut reply_rxs = Vec::with_capacity(shards);
    for shard in 0..shards {
        let label = shard.to_string();
        let cmd_gauges = registry.as_ref().map(|r| {
            QueueGauges::register(
                r,
                &[("queue", "shard_cmd"), ("shard", label.as_str())],
                None,
            )
        });
        let (tx, rx) = gauged(channel::unbounded::<ShardMsg>(), cmd_gauges);
        cmd_txs.push(tx);
        cmd_rxs.push(rx);
        let reply_gauges = registry.as_ref().map(|r| {
            QueueGauges::register(
                r,
                &[("queue", "shard_reply"), ("shard", label.as_str())],
                None,
            )
        });
        let (tx, rx) = gauged(channel::unbounded::<ShardReply>(), reply_gauges);
        reply_txs.push(tx);
        reply_rxs.push(rx);
    }

    // Tokenizer pool channels: the source dispatches increment `seq` to
    // tokenizer `seq % T`; the router collects from tokenized channel
    // `seq % T`, so increment order survives without `select`.
    let pool = shards.max(1);
    let mut tok_txs = Vec::with_capacity(pool);
    let mut tok_rxs = Vec::with_capacity(pool);
    let mut routed_txs = Vec::with_capacity(pool);
    let mut routed_rxs = Vec::with_capacity(pool);
    for lane in 0..pool {
        let label = lane.to_string();
        let tok_gauges = registry.as_ref().map(|r| {
            QueueGauges::register(
                r,
                &[("queue", "tokenizer"), ("lane", label.as_str())],
                Some(64),
            )
        });
        let (tx, rx) = gauged(
            channel::bounded::<(u64, Vec<EntityProfile>)>(64),
            tok_gauges,
        );
        tok_txs.push(tx);
        tok_rxs.push(rx);
        let routed_gauges = registry.as_ref().map(|r| {
            QueueGauges::register(
                r,
                &[("queue", "routed"), ("lane", label.as_str())],
                Some(64),
            )
        });
        let (tx, rx) = gauged(channel::bounded::<TokenizedIncrement>(64), routed_gauges);
        routed_txs.push(tx);
        routed_rxs.push(rx);
    }

    // Source: replay increments at the configured rate, round-robin over
    // the tokenizer pool.
    let source = spawn_source(
        increments,
        config.interarrival,
        Arc::clone(&shutdown),
        move |i, inc| tok_txs[i % tok_txs.len()].send((i as u64, inc)).is_ok(),
    );

    let mut matches: Vec<MatchEvent> = Vec::new();

    std::thread::scope(|scope| {
        // Shard workers: one thread per shard, each owning its blocker +
        // emitter, exiting when every command sender is dropped.
        for (shard, (cmd_rx, reply_tx)) in cmd_rxs.into_iter().zip(reply_txs).enumerate() {
            let mut worker = ShardWorker::new(
                shard as u16,
                kind,
                shard_config.strategy,
                shard_config.pier,
                shard_config.purge_policy,
                &observer,
            );
            let observer = observer.for_shard(shard as u16);
            let ingest_errors = Arc::clone(&ingest_errors);
            scope.spawn(move || {
                for msg in cmd_rx.iter() {
                    match msg {
                        ShardMsg::Ingest(batch) => {
                            let t0 = observer.is_enabled().then(Instant::now);
                            for e in worker.ingest(&batch) {
                                ingest_errors.lock().push(e.to_string());
                            }
                            if let Some(t0) = t0 {
                                observer.emit(|| Event::PhaseTiming {
                                    phase: Phase::Weight,
                                    secs: t0.elapsed().as_secs_f64(),
                                });
                            }
                        }
                        ShardMsg::Pull { k } => {
                            let _ = reply_tx.send(ShardReply::Batch(worker.pull(k)));
                        }
                        ShardMsg::Tick => {
                            let _ = reply_tx.send(ShardReply::Tick(worker.tick()));
                        }
                    }
                }
            });
        }

        // Tokenizer pool: tokenize + intern increments in parallel against
        // the one shared dictionary; the serial router downstream only
        // hashes ids and touches the store.
        for (tok_rx, routed_tx) in tok_rxs.into_iter().zip(routed_txs) {
            let dictionary = dictionary.clone();
            scope.spawn(move || {
                let tokenizer = Tokenizer::default();
                let mut scratch = String::new();
                for (seq, inc) in tok_rx.iter() {
                    let tokenized =
                        tokenize_increment(&dictionary, &tokenizer, seq, inc, &mut scratch);
                    if routed_tx.send(tokenized).is_err() {
                        break;
                    }
                }
            });
        }

        // Router/ingest: store globally, compute ghost floors, fan out.
        {
            let store = Arc::clone(&store);
            let ingest_done = Arc::clone(&ingest_done);
            let adaptive = Arc::clone(&adaptive);
            let cmd_txs = cmd_txs.clone();
            let router = router.clone();
            let ingest_errors = Arc::clone(&ingest_errors);
            let observer = observer.clone();
            scope.spawn(move || {
                let mut seq = 0usize;
                // Round-robin collection mirrors dispatch: a disconnect on
                // channel `seq % T` means no increment >= seq was sent.
                while let Ok(tokenized) = routed_rxs[seq % routed_rxs.len()].recv() {
                    adaptive
                        .lock()
                        .record_arrival(start.elapsed().as_secs_f64());
                    let t0 = observer.is_enabled().then(Instant::now);
                    let mut per_shard: Vec<Vec<(EntityProfile, Vec<TokenId>, usize)>> =
                        (0..cmd_txs.len()).map(|_| Vec::new()).collect();
                    let mut accepted: Vec<TokenizedProfile> = Vec::with_capacity(tokenized.len());
                    {
                        let mut store = store.write();
                        // The whole increment enters the store before any
                        // floor is read, mirroring the unsharded blocker
                        // which blocks a full increment before generating.
                        // Duplicate ids are skipped and reported, never
                        // fanned out.
                        for tp in tokenized.profiles {
                            match store.insert(tp.profile.clone(), &tp.tokens) {
                                Ok(()) => accepted.push(tp),
                                Err(e) => ingest_errors.lock().push(e.to_string()),
                            }
                        }
                        for tp in &accepted {
                            let floor = store.min_token_count(tp.profile.id).unwrap_or(1);
                            // Shards block and weight only — ship them an
                            // attribute-less skeleton, not a full clone.
                            for (shard, tokens) in router.route_ids(&tp.tokens) {
                                per_shard[shard as usize].push((
                                    EntityProfile::new(tp.profile.id, tp.profile.source),
                                    tokens,
                                    floor,
                                ));
                            }
                        }
                    }
                    for (shard, batch) in per_shard.into_iter().enumerate() {
                        if !batch.is_empty() {
                            let _ = cmd_txs[shard].send(ShardMsg::Ingest(batch));
                        }
                    }
                    if let Some(t0) = t0 {
                        observer.emit(|| Event::PhaseTiming {
                            phase: Phase::Block,
                            secs: t0.elapsed().as_secs_f64(),
                        });
                    }
                    let profiles = accepted.len();
                    observer.emit(|| Event::IncrementIngested {
                        seq: seq as u64,
                        profiles,
                    });
                    seq += 1;
                }
                // All `Ingest` messages are enqueued before this store, so
                // any thread that *observes* `true` and then sends `Tick`
                // knows the ticks queue behind every ingest.
                ingest_done.store(true, Ordering::SeqCst);
            });
        }

        // Stage B: k-way merge, classify, emit match events.
        {
            let store = Arc::clone(&store);
            let ingest_done = Arc::clone(&ingest_done);
            let adaptive = Arc::clone(&adaptive);
            let matcher = Arc::clone(&matcher);
            let shutdown = Arc::clone(&shutdown);
            let executed_total = Arc::clone(&executed_total);
            let max_comparisons = config.max_comparisons;
            let deadline = config.deadline;
            let observer = observer.clone();
            let worker_comparisons = Arc::clone(&worker_comparisons);
            let registry = registry.clone();
            let mut merger = ShardMerger::new(shards);
            merger.set_observer(observer.clone());
            scope.spawn(move || {
                let mut pool = (match_workers > 1).then(|| {
                    MatchPool::new(
                        match_workers,
                        Arc::clone(&matcher),
                        &observer,
                        registry.as_deref(),
                    )
                });
                let mut backoff = IdleBackoff::new();
                let mut classifier = Classifier {
                    start,
                    deadline,
                    max_comparisons,
                    matcher: matcher.as_ref(),
                    observer: &observer,
                    match_tx,
                    metrics: registry.as_deref().map(|r| {
                        ClassifierMetrics::register(r, max_comparisons, match_workers <= 1)
                    }),
                    executed: 0,
                };
                loop {
                    if classifier.over_budget() {
                        break;
                    }
                    let k = adaptive.lock().k();
                    let t0 = observer.is_enabled().then(Instant::now);
                    let cmps = merger.next_batch_with(k, |s, n| {
                        if cmd_txs[s].send(ShardMsg::Pull { k: n }).is_err() {
                            return Vec::new();
                        }
                        match reply_rxs[s].recv() {
                            Ok(ShardReply::Batch(batch)) => batch,
                            _ => Vec::new(),
                        }
                    });
                    if let Some(t0) = t0 {
                        observer.emit(|| Event::PhaseTiming {
                            phase: Phase::Prune,
                            secs: t0.elapsed().as_secs_f64(),
                        });
                    }
                    if cmps.is_empty() {
                        // Check *before* ticking: if ingestion had already
                        // finished, the ticks are ordered behind every
                        // `Ingest` in each shard's queue, so "no work"
                        // replies are conclusive.
                        let done_before_tick = ingest_done.load(Ordering::SeqCst);
                        let mut tick_made_work = false;
                        for tx in &cmd_txs {
                            let _ = tx.send(ShardMsg::Tick);
                        }
                        for rx in &reply_rxs {
                            if let Ok(ShardReply::Tick(made_work)) = rx.recv() {
                                tick_made_work |= made_work;
                            }
                        }
                        if tick_made_work {
                            backoff.reset();
                        } else {
                            if done_before_tick {
                                break;
                            }
                            backoff.sleep();
                        }
                        continue;
                    }
                    backoff.reset();
                    // Materialize profiles so classification is lock-free;
                    // each pair is four refcount bumps, not a deep clone.
                    let batch: Vec<MaterializedPair> = {
                        let store = store.read();
                        cmps.into_iter()
                            .map(|c| MaterializedPair {
                                profile_a: store.profile_handle(c.a),
                                tokens_a: store.tokens_handle(c.a),
                                profile_b: store.profile_handle(c.b),
                                tokens_b: store.tokens_handle(c.b),
                            })
                            .collect()
                    };
                    classifier.classify_batch(batch, &adaptive, pool.as_mut());
                }
                executed_total.store(classifier.executed, Ordering::SeqCst);
                *worker_comparisons.lock() = match &pool {
                    Some(pool) => pool.executed_per_worker().to_vec(),
                    None => vec![classifier.executed],
                };
                shutdown.store(true, Ordering::SeqCst);
                // Dropping this thread's `cmd_txs` clone (and the
                // classifier's match sender) lets the shard workers and the
                // collector exit once the router thread is done too.
            });
        }

        // Collector (this thread): stream match events to the caller.
        for event in match_rx.iter() {
            on_match(event);
            matches.push(event);
        }
    });

    let comparisons = executed_total.load(Ordering::SeqCst);
    source.join().expect("source thread never panics");

    let token_occurrences = store.read().token_occurrences();
    let ingest_errors = std::mem::take(&mut *ingest_errors.lock());
    let worker_comparisons = std::mem::take(&mut *worker_comparisons.lock());
    let report = RuntimeReport {
        matches,
        comparisons,
        elapsed: start.elapsed(),
        profiles: total_profiles,
        dictionary: Some(DictionaryStats {
            distinct_tokens: dictionary.len(),
            string_bytes: dictionary.string_bytes(),
            token_occurrences,
        }),
        ingest_errors,
        match_workers,
        worker_comparisons,
        entity_summary: entities.as_ref().map(|i| i.summary(total_profiles)),
    };
    if let Some(t) = &telemetry {
        report.publish_final(t);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use pier_matching::JaccardMatcher;
    use pier_types::{ProfileId, SourceId};
    use std::time::Duration;

    fn increments() -> Vec<Vec<EntityProfile>> {
        vec![
            vec![
                EntityProfile::new(ProfileId(0), SourceId(0)).with("t", "alpha beta gamma"),
                EntityProfile::new(ProfileId(1), SourceId(0)).with("t", "alpha beta gamma"),
            ],
            vec![
                EntityProfile::new(ProfileId(2), SourceId(0)).with("t", "delta epsilon"),
                EntityProfile::new(ProfileId(3), SourceId(0)).with("t", "delta epsilon"),
            ],
        ]
    }

    fn runtime_config() -> RuntimeConfig {
        RuntimeConfig {
            interarrival: Duration::from_millis(5),
            deadline: Duration::from_secs(10),
            ..RuntimeConfig::default()
        }
    }

    #[test]
    fn sharded_pipeline_finds_matches_in_real_time() {
        let matcher: Arc<dyn MatchFunction> = Arc::new(JaccardMatcher::default());
        let mut streamed = 0;
        let report = run_streaming_sharded(
            ErKind::Dirty,
            increments(),
            ShardedConfig::default(),
            matcher,
            runtime_config(),
            |_| streamed += 1,
        );
        assert_eq!(report.matches.len(), 2);
        assert_eq!(streamed, 2);
        assert_eq!(report.profiles, 4);
        assert!(report.comparisons >= 2);
        assert!(report.ingest_errors.is_empty());
        assert!(report.matches.windows(2).all(|w| w[0].at <= w[1].at));
        // One shared dictionary across the tokenizer pool: 5 distinct
        // tokens, 10 occurrences (3+3+2+2).
        let dict = report.dictionary.expect("sharded driver interns tokens");
        assert_eq!(dict.distinct_tokens, 5);
        assert_eq!(dict.token_occurrences, 10);
    }

    #[test]
    fn observed_sharded_run_breaks_work_down_per_shard() {
        use pier_observe::StatsObserver;
        use pier_types::GroundTruth;

        let gt =
            GroundTruth::from_pairs([(ProfileId(0), ProfileId(1)), (ProfileId(2), ProfileId(3))]);
        let stats = Arc::new(StatsObserver::with_ground_truth(gt));
        let matcher: Arc<dyn MatchFunction> = Arc::new(JaccardMatcher::default());
        let report = run_streaming_sharded_observed(
            ErKind::Dirty,
            increments(),
            ShardedConfig::default(),
            matcher,
            runtime_config(),
            Observer::new(stats.clone()),
            |_| {},
        );
        let snap = stats.snapshot();
        assert_eq!(snap.increments, 2);
        assert_eq!(snap.profiles, 4);
        assert!(snap.blocks_built > 0);
        assert_eq!(snap.matches_confirmed as usize, report.matches.len());
        assert_eq!(snap.pc, Some(1.0));
        // Shard-tagged events produced a per-shard breakdown that accounts
        // for every block built.
        assert!(!snap.shards.is_empty());
        let shard_blocks: u64 = snap.shards.iter().map(|s| s.blocks_built).sum();
        assert_eq!(shard_blocks, snap.blocks_built);
        // Fan-out: every profile reaches at least one shard, and the
        // shard-tagged ingest accounting never leaks into the global total.
        let shard_profiles: u64 = snap.shards.iter().map(|s| s.profiles).sum();
        assert!(shard_profiles >= snap.profiles);
        assert_eq!(snap.profiles, 4);
    }

    #[test]
    fn sharded_telemetry_counters_equal_the_report() {
        use pier_metrics::Telemetry;

        let telemetry = Telemetry::new();
        let registry = Arc::clone(telemetry.registry());
        let matcher: Arc<dyn MatchFunction> = Arc::new(JaccardMatcher::default());
        let config = RuntimeConfig {
            telemetry: Some(telemetry),
            ..runtime_config()
        };
        let report = run_streaming_sharded(
            ErKind::Dirty,
            increments(),
            ShardedConfig::default(),
            matcher,
            config,
            |_| {},
        );
        let counter = |name: &str| registry.counter(name, "", &[]).get();
        assert_eq!(counter("pier_comparisons_total"), report.comparisons);
        assert_eq!(
            counter("pier_matches_confirmed_total"),
            report.matches.len() as u64
        );
        assert_eq!(counter("pier_profiles_total"), report.profiles as u64);
        for (worker, &want) in report.worker_comparisons.iter().enumerate() {
            let label = worker.to_string();
            let got = registry
                .counter(
                    "pier_worker_comparisons_total",
                    "",
                    &[("worker", label.as_str())],
                )
                .get();
            assert_eq!(got, want, "worker {worker}");
        }
        // Shard-labeled comparison counters sum to the global emitted total.
        let default_shards = ShardedConfig::default().shards;
        let shard_emitted: u64 = (0..default_shards)
            .map(|s| {
                let label = s.to_string();
                registry
                    .counter(
                        "pier_shard_comparisons_emitted_total",
                        "",
                        &[("shard", label.as_str())],
                    )
                    .get()
            })
            .sum();
        assert_eq!(shard_emitted, counter("pier_comparisons_emitted_total"));
        // Every instrumented channel drained back to zero depth.
        let depth_gauges = [
            ("matches", None),
            ("shard_cmd", Some("shard")),
            ("tokenizer", Some("lane")),
        ];
        for (queue, extra) in depth_gauges {
            for i in 0..default_shards {
                let label = i.to_string();
                let labels: Vec<(&str, &str)> = match extra {
                    Some(key) => vec![("queue", queue), (key, label.as_str())],
                    None => vec![("queue", queue)],
                };
                assert_eq!(
                    registry.gauge("pier_queue_depth", "", &labels).get(),
                    0,
                    "queue {queue} {i}"
                );
                if extra.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn single_shard_matches_multi_shard_results() {
        let matcher: Arc<dyn MatchFunction> = Arc::new(JaccardMatcher::default());
        let run = |shards: u16| {
            let report = run_streaming_sharded(
                ErKind::Dirty,
                increments(),
                ShardedConfig {
                    shards,
                    ..ShardedConfig::default()
                },
                Arc::clone(&matcher),
                runtime_config(),
                |_| {},
            );
            let mut pairs: Vec<_> = report.matches.iter().map(|m| m.pair).collect();
            pairs.sort_unstable();
            pairs
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn sharded_entity_index_clusters_the_match_stream() {
        use pier_entity::EntityIndex;

        let matcher: Arc<dyn MatchFunction> = Arc::new(JaccardMatcher::default());
        let index = EntityIndex::shared();
        let config = RuntimeConfig {
            entities: Some(Arc::clone(&index)),
            ..runtime_config()
        };
        let report = run_streaming_sharded(
            ErKind::Dirty,
            increments(),
            ShardedConfig::default(),
            matcher,
            config,
            |_| {},
        );
        assert_eq!(index.stats().matches_applied, report.matches.len() as u64);
        assert!(index.same_entity(ProfileId(0), ProfileId(1)));
        assert!(index.same_entity(ProfileId(2), ProfileId(3)));
        let summary = report.entity_summary.expect("entities configured");
        assert_eq!(summary.clusters, 2);
        assert_eq!(summary.singletons, 0);
    }

    #[test]
    fn duplicate_profile_is_reported_not_fatal() {
        let matcher: Arc<dyn MatchFunction> = Arc::new(JaccardMatcher::default());
        let mut increments = increments();
        // A second copy of profile 0: skipped at the global store, reported,
        // and never fanned out to any shard.
        increments.push(vec![
            EntityProfile::new(ProfileId(0), SourceId(0)).with("t", "alpha zeta")
        ]);
        let report = run_streaming_sharded(
            ErKind::Dirty,
            increments,
            ShardedConfig::default(),
            matcher,
            runtime_config(),
            |_| {},
        );
        assert_eq!(report.ingest_errors.len(), 1);
        assert!(report.ingest_errors[0].contains("profile 0 ingested twice"));
        assert_eq!(report.matches.len(), 2);
        assert_eq!(report.dictionary.unwrap().token_occurrences, 10);
    }

    #[test]
    fn deadline_stops_the_sharded_pipeline() {
        let matcher: Arc<dyn MatchFunction> = Arc::new(JaccardMatcher::default());
        let many: Vec<Vec<EntityProfile>> = (0..100u32)
            .map(|i| {
                vec![EntityProfile::new(ProfileId(i), SourceId(0))
                    .with("t", format!("tok{i} tok{}", i / 2))]
            })
            .collect();
        let config = RuntimeConfig {
            interarrival: Duration::from_millis(200),
            deadline: Duration::from_millis(50),
            ..RuntimeConfig::default()
        };
        let report = run_streaming_sharded(
            ErKind::Dirty,
            many,
            ShardedConfig::default(),
            matcher,
            config,
            |_| {},
        );
        assert!(report.elapsed < Duration::from_secs(25));
    }
}
