//! Deprecated sharded entry points.
//!
//! The hash-partitioned driver that lived here is now the
//! [`PipelineBuilder::sharded`](crate::PipelineBuilder::sharded) topology
//! of the unified [`Pipeline`] (see [`crate::pipeline`]
//! for the stage graph); these wrappers survive one release as thin
//! delegations so existing callers keep compiling with a deprecation
//! warning. Outputs are bit-identical — the equivalence tests in
//! `tests/pipeline_equivalence.rs` pin that.

use std::sync::Arc;

use pier_matching::MatchFunction;
use pier_observe::Observer;
use pier_shard::ShardedConfig;
use pier_types::{EntityProfile, ErKind};

use crate::pipeline::Pipeline;
use crate::report::{MatchEvent, RuntimeReport};
use crate::streaming::RuntimeConfig;

/// Normalizes the one legacy leniency [`RuntimeConfig::validate`] rejects:
/// the old drivers documented `match_workers: 0` as an alias for `1`.
fn normalized(mut config: RuntimeConfig) -> RuntimeConfig {
    config.match_workers = config.match_workers.max(1);
    config
}

/// `run_streaming` with a hash-partitioned parallel stage A.
#[deprecated(
    since = "0.1.0",
    note = "build a `Pipeline` instead: \
            `Pipeline::builder(kind).config(config).sharded(shard_config).build()?.run(...)`"
)]
pub fn run_streaming_sharded(
    kind: ErKind,
    increments: Vec<Vec<EntityProfile>>,
    shard_config: ShardedConfig,
    matcher: Arc<dyn MatchFunction>,
    config: RuntimeConfig,
    on_match: impl FnMut(MatchEvent),
) -> RuntimeReport {
    Pipeline::builder(kind)
        .config(normalized(config))
        .sharded(shard_config)
        .build()
        .expect("legacy RuntimeConfig and ShardedConfig validate")
        .run(increments, matcher, on_match)
}

/// [`run_streaming_sharded`] with a pipeline observer attached everywhere.
#[deprecated(
    since = "0.1.0",
    note = "observation is always on in `Pipeline`: pass sinks via \
            `.observe(label, sink)` / `.observers(set)` \
            (an empty set is the zero-cost disabled default)"
)]
pub fn run_streaming_sharded_observed(
    kind: ErKind,
    increments: Vec<Vec<EntityProfile>>,
    shard_config: ShardedConfig,
    matcher: Arc<dyn MatchFunction>,
    config: RuntimeConfig,
    observer: Observer,
    on_match: impl FnMut(MatchEvent),
) -> RuntimeReport {
    Pipeline::builder(kind)
        .config(normalized(config))
        .sharded(shard_config)
        .observers(observer)
        .build()
        .expect("legacy RuntimeConfig and ShardedConfig validate")
        .run(increments, matcher, on_match)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use pier_matching::JaccardMatcher;
    use pier_observe::StatsObserver;
    use pier_types::{ProfileId, SourceId};
    use std::time::Duration;

    fn increments() -> Vec<Vec<EntityProfile>> {
        vec![
            vec![
                EntityProfile::new(ProfileId(0), SourceId(0)).with("t", "alpha beta gamma"),
                EntityProfile::new(ProfileId(1), SourceId(0)).with("t", "alpha beta gamma"),
            ],
            vec![
                EntityProfile::new(ProfileId(2), SourceId(0)).with("t", "delta epsilon"),
                EntityProfile::new(ProfileId(3), SourceId(0)).with("t", "delta epsilon"),
            ],
        ]
    }

    /// The deprecated wrappers still produce the legacy results — the
    /// delegation pin for callers that have not migrated yet (the full
    /// cross-topology matrix lives in `tests/pipeline_equivalence.rs`).
    #[test]
    fn deprecated_sharded_wrappers_still_run_the_pipeline() {
        let matcher: Arc<dyn MatchFunction> = Arc::new(JaccardMatcher::default());
        let config = RuntimeConfig {
            interarrival: Duration::from_millis(5),
            deadline: Duration::from_secs(10),
            ..RuntimeConfig::default()
        };
        let mut streamed = 0;
        let report = run_streaming_sharded(
            ErKind::Dirty,
            increments(),
            ShardedConfig::default(),
            Arc::clone(&matcher),
            config.clone(),
            |_| streamed += 1,
        );
        assert_eq!(report.matches.len(), 2);
        assert_eq!(streamed, 2);
        assert_eq!(report.dictionary.expect("interned").distinct_tokens, 5);

        let stats = Arc::new(StatsObserver::new());
        let observed = run_streaming_sharded_observed(
            ErKind::Dirty,
            increments(),
            ShardedConfig::default(),
            matcher,
            config,
            Observer::new(stats.clone()),
            |_| {},
        );
        assert_eq!(observed.matches.len(), 2);
        let snap = stats.snapshot();
        assert_eq!(snap.matches_confirmed, 2);
        // Shard-tagged events still flow through the composed observer.
        assert!(!snap.shards.is_empty());
    }
}
