//! Stage scaffolding shared by the streaming and sharded drivers.
//!
//! Both `run_streaming` and `run_streaming_sharded` are the same pipeline
//! with a different stage A in the middle: a source replays increments at a
//! configured rate, a tokenize stage interns each profile exactly once
//! against a [`SharedTokenDictionary`] (producing one
//! [`TokenizedIncrement`] per source increment), and a stage B pulls
//! batches, materializes the profile pairs, and classifies them. This
//! module holds those shared pieces so each driver only contributes its
//! actual topology (single blocker vs. router + shard workers).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, TrySendError};
use parking_lot::Mutex;

use pier_chaos::{ChaosHandle, FaultKind, FaultPoint};
use pier_core::AdaptiveK;
use pier_matching::{MatchFunction, MatchInput, MatchOutcome};
use pier_metrics::{
    queue::gauged, Counter, Gauge, GaugedReceiver, GaugedSender, MetricsRegistry, QueueGauges,
};
use pier_observe::{Event, Observer, Phase, WorkerRole};
use pier_types::{EntityProfile, PierError, SharedTokenDictionary, TokenId, Tokenizer};

use crate::pool::MatchPool;
use crate::report::MatchEvent;
use crate::supervisor::Supervisor;

/// A profile together with its interned sorted-distinct token ids.
#[derive(Debug, Clone)]
pub struct TokenizedProfile {
    /// The profile as it arrived.
    pub profile: EntityProfile,
    /// Its sorted distinct token ids in the pipeline's shared dictionary.
    pub tokens: Vec<TokenId>,
}

/// One source increment after the tokenize stage: every profile carries its
/// token ids, so no downstream stage ever re-tokenizes or re-interns.
#[derive(Debug, Clone)]
pub struct TokenizedIncrement {
    /// Position of the increment in the stream (0-based).
    pub seq: u64,
    /// The increment's profiles with their token ids.
    pub profiles: Vec<TokenizedProfile>,
}

impl TokenizedIncrement {
    /// Number of profiles in the increment.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the increment carries no profiles.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }
}

/// Tokenizes one increment against the shared dictionary: each token string
/// is hashed (and, if unseen, allocated) exactly once here, and everything
/// downstream speaks dense ids. `scratch` is the reusable lowercase buffer
/// of the calling thread.
pub fn tokenize_increment(
    dictionary: &SharedTokenDictionary,
    tokenizer: &Tokenizer,
    seq: u64,
    increment: Vec<EntityProfile>,
    scratch: &mut String,
) -> TokenizedIncrement {
    let profiles = increment
        .into_iter()
        .map(|profile| {
            let tokens = dictionary.tokenize_and_intern(tokenizer, &profile, scratch);
            TokenizedProfile { profile, tokens }
        })
        .collect();
    TokenizedIncrement { seq, profiles }
}

/// Spawns the source thread: replays `increments` with `interarrival`
/// pauses, dispatching each through `send` (which returns `false` when the
/// pipeline has gone away). A set `shutdown` flag stops the replay early.
pub(crate) fn spawn_source(
    increments: Vec<Vec<EntityProfile>>,
    interarrival: Duration,
    shutdown: Arc<AtomicBool>,
    mut send: impl FnMut(usize, Vec<EntityProfile>) -> bool + Send + 'static,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        for (i, inc) in increments.into_iter().enumerate() {
            if i > 0 {
                std::thread::sleep(interarrival);
            }
            if shutdown.load(Ordering::SeqCst) || !send(i, inc) {
                break;
            }
        }
        // Dropping `send` (and the channel senders it owns) closes the
        // stream.
    })
}

/// A comparison materialized for lock-free classification: both profiles
/// and their token-id sets, shared with whichever store holds them.
///
/// The fields are `Arc` handles, so materializing a pair is four refcount
/// bumps — no attribute map or token vector is deep-cloned per comparison,
/// and fanning a batch out to match workers shares the same allocations.
pub(crate) struct MaterializedPair {
    pub profile_a: Arc<EntityProfile>,
    pub tokens_a: Arc<[TokenId]>,
    pub profile_b: Arc<EntityProfile>,
    pub tokens_b: Arc<[TokenId]>,
}

/// Shared `# HELP` text for `pier_worker_comparisons_total`, registered by
/// both the pool (one counter per worker) and the sequential classifier
/// (`worker="0"` only).
pub(crate) const WORKER_COMPARISONS_HELP: &str =
    "Comparisons evaluated per match worker (the report's worker_comparisons).";

/// Live classifier metrics: the scraped totals that must equal the final
/// [`crate::RuntimeReport`] exactly (`pier_comparisons_total` ==
/// `report.comparisons`, and in sequential mode
/// `pier_worker_comparisons_total{worker="0"}` == its single
/// `worker_comparisons` entry).
pub(crate) struct ClassifierMetrics {
    comparisons: Arc<Counter>,
    budget_remaining: Arc<Gauge>,
    /// Sequential mode only; pooled runs count per worker in the pool.
    sequential_worker: Option<Arc<Counter>>,
}

impl ClassifierMetrics {
    /// Registers the classifier's live families, seeding the budget gauge
    /// with the run's full comparison cap.
    pub fn register(registry: &MetricsRegistry, max_comparisons: u64, sequential: bool) -> Self {
        let budget_remaining = registry.gauge(
            "pier_budget_remaining",
            "Comparisons left before the run's safety cap.",
            &[],
        );
        budget_remaining.set(max_comparisons.min(i64::MAX as u64) as i64);
        ClassifierMetrics {
            comparisons: registry.counter(
                "pier_comparisons_total",
                "Comparisons executed by the classifier (the report's total).",
                &[],
            ),
            budget_remaining,
            sequential_worker: sequential.then(|| {
                registry.counter(
                    "pier_worker_comparisons_total",
                    WORKER_COMPARISONS_HELP,
                    &[("worker", "0")],
                )
            }),
        }
    }
}

/// The classification tail of stage B, shared by both drivers: evaluate
/// the matcher over a materialized batch, emit `MatchConfirmed` events and
/// [`MatchEvent`]s, time the phase, and feed the adaptive-`K` controller.
pub(crate) struct Classifier<'a> {
    pub start: Instant,
    pub deadline: Duration,
    pub max_comparisons: u64,
    pub matcher: &'a dyn MatchFunction,
    pub observer: &'a Observer,
    pub match_tx: GaugedSender<MatchEvent>,
    pub metrics: Option<ClassifierMetrics>,
    pub chaos: ChaosHandle,
    pub supervisor: &'a Supervisor,
    pub executed: u64,
}

impl Classifier<'_> {
    /// Whether the run's wall-clock deadline or comparison cap is reached.
    pub fn over_budget(&self) -> bool {
        self.start.elapsed() >= self.deadline || self.executed >= self.max_comparisons
    }

    /// Classifies one batch (stopping early if the budget runs out mid-way)
    /// and records the batch time with the adaptive-`K` controller.
    ///
    /// With a pool the matcher evaluations fan out across its workers, but
    /// every externally visible effect — comparison accounting,
    /// `MatchConfirmed` events, [`MatchEvent`] delivery, the budget cutoff —
    /// happens here on the coordinator, over the re-sequenced outcomes, in
    /// exactly the order the sequential path produces. The one intentional
    /// difference: the pool always evaluates the whole batch, so a budget
    /// cutoff discards already-computed tail outcomes instead of skipping
    /// their evaluation (the counted comparisons are identical).
    ///
    /// The batch timing fed to the adaptive-`K` controller is wall-clock
    /// in both modes; with `N` workers it reflects the slowest chunk, so
    /// the controller sizes `K` against the pool's aggregate throughput.
    pub fn classify_batch(
        &mut self,
        batch: Vec<MaterializedPair>,
        adaptive: &Mutex<AdaptiveK>,
        pool: Option<&mut MatchPool>,
    ) {
        let t0 = self.start.elapsed().as_secs_f64();
        match pool {
            Some(pool) => {
                let batch = Arc::new(batch);
                let evaluated = pool.evaluate(&batch);
                for (pair, ev) in batch.iter().zip(evaluated) {
                    self.record(pair, &ev.outcome, Some(ev.worker));
                    if self.over_budget() {
                        break;
                    }
                }
            }
            None => {
                for pair in &batch {
                    let outcome = self.matcher.evaluate(MatchInput {
                        profile_a: &pair.profile_a,
                        tokens_a: &pair.tokens_a,
                        profile_b: &pair.profile_b,
                        tokens_b: &pair.tokens_b,
                    });
                    self.record(pair, &outcome, None);
                    if self.over_budget() {
                        break;
                    }
                }
            }
        }
        let batch_secs = self.start.elapsed().as_secs_f64() - t0;
        self.observer.emit(|| Event::PhaseTiming {
            phase: Phase::Classify,
            secs: batch_secs,
        });
        adaptive.lock().record_batch(batch_secs);
    }

    /// Accounts one evaluated pair and emits its match events if confirmed.
    /// `worker` attributes the confirmation to the match worker that
    /// evaluated the pair (parallel mode only; the sequential path stays
    /// untagged, preserving its exact event stream).
    fn record(&mut self, pair: &MaterializedPair, outcome: &MatchOutcome, worker: Option<u16>) {
        self.executed += 1;
        if let Some(m) = &self.metrics {
            m.comparisons.inc();
            m.budget_remaining.dec();
            if let Some(w) = &m.sequential_worker {
                w.inc();
            }
        }
        if outcome.is_match {
            let at = self.start.elapsed();
            let cmp = pier_types::Comparison::new(pair.profile_a.id, pair.profile_b.id);
            // The entity_apply fault point sits between confirmation and
            // delivery: a Delay stretches the apply, a SendFail simulates a
            // dead match channel, a Panic loses the match outright. All
            // three end in the dead-letter queue, never in a crash.
            let mut deliver = true;
            if self.chaos.is_armed() {
                let tripped = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    self.chaos.trip(FaultPoint::EntityApply, None)
                }));
                match tripped {
                    Err(_) => {
                        self.supervisor
                            .lost_match(cmp, outcome.similarity, self.observer);
                        return;
                    }
                    Ok(Some(FaultKind::SendFail)) => deliver = false,
                    Ok(_) => {}
                }
            }
            let event = || Event::MatchConfirmed {
                cmp,
                similarity: outcome.similarity,
                at_secs: at.as_secs_f64(),
            };
            match worker {
                Some(worker) => self.observer.for_worker(worker).emit(event),
                None => self.observer.emit(event),
            }
            let sent = deliver
                && send_with_backoff(
                    &self.match_tx,
                    MatchEvent {
                        at,
                        pair: cmp,
                        similarity: outcome.similarity,
                    },
                    SEND_TIMEOUT,
                    "matches",
                )
                .is_ok();
            if !sent {
                // Confirmed but undeliverable: surface the loss instead of
                // silently dropping the event.
                self.supervisor
                    .lost_match(cmp, outcome.similarity, self.observer);
            }
        }
    }
}

/// How long a pipeline send keeps retrying against a full bounded channel
/// before declaring the receiver unresponsive.
pub(crate) const SEND_TIMEOUT: Duration = Duration::from_secs(2);

/// Sends `value` with bounded patience: one immediate `try_send`, then
/// retries under an [`IdleBackoff`] ladder until `timeout`. Returns
/// [`PierError::ChannelClosed`] when the receiver is gone — a channel that
/// stays full past the timeout is treated the same way (the receiving
/// stage is unresponsive), so callers can dead-letter the payload rather
/// than block the pipeline forever.
pub(crate) fn send_with_backoff<T>(
    tx: &GaugedSender<T>,
    value: T,
    timeout: Duration,
    channel: &'static str,
) -> Result<(), PierError> {
    let mut value = match tx.try_send(value) {
        Ok(()) => return Ok(()),
        Err(TrySendError::Disconnected(_)) => return Err(PierError::ChannelClosed { channel }),
        Err(TrySendError::Full(v)) => v,
    };
    let mut backoff = IdleBackoff::new();
    let deadline = Instant::now() + timeout;
    loop {
        backoff.sleep();
        value = match tx.try_send(value) {
            Ok(()) => return Ok(()),
            Err(TrySendError::Disconnected(_)) => return Err(PierError::ChannelClosed { channel }),
            Err(TrySendError::Full(v)) => v,
        };
        if Instant::now() >= deadline {
            return Err(PierError::ChannelClosed { channel });
        }
    }
}

/// Exponential backoff for the stage-B idle loop: instead of spinning at a
/// fixed 200µs poll while the input is quiet, consecutive idle ticks sleep
/// 200µs, 400µs, … up to a 5ms cap, and any tick that finds work resets
/// the ladder. The tick itself (the empty increment driving the
/// `GetComparisons` fallback of §3.2) still runs on every iteration — only
/// the sleep between unproductive ticks stretches.
///
/// The same ladder paces retries of a blocked pipeline send (see the
/// bounded-channel hardening in [`crate::RuntimeConfig::channel_capacity`]).
#[derive(Debug)]
pub struct IdleBackoff {
    delay: Duration,
}

impl IdleBackoff {
    /// First (and post-reset) sleep between unproductive idle ticks.
    pub const INITIAL: Duration = Duration::from_micros(200);
    /// Ceiling the doubling stops at.
    pub const MAX: Duration = Duration::from_millis(5);

    /// A fresh ladder starting at [`IdleBackoff::INITIAL`].
    pub fn new() -> IdleBackoff {
        IdleBackoff {
            delay: Self::INITIAL,
        }
    }

    /// Drops back to [`IdleBackoff::INITIAL`]; call when a tick made work.
    pub fn reset(&mut self) {
        self.delay = Self::INITIAL;
    }

    /// The next sleep duration, doubling up to [`IdleBackoff::MAX`].
    pub fn next_delay(&mut self) -> Duration {
        let delay = self.delay;
        self.delay = (self.delay * 2).min(Self::MAX);
        delay
    }

    /// Sleeps for [`IdleBackoff::next_delay`].
    pub fn sleep(&mut self) {
        std::thread::sleep(self.next_delay());
    }
}

impl Default for IdleBackoff {
    fn default() -> IdleBackoff {
        IdleBackoff::new()
    }
}

/// Builds one pipeline channel, registering queue-depth/backpressure
/// gauges under `labels` when the run has a telemetry registry. `capacity`
/// of `None` means unbounded. This is the single place channel-gauge
/// wiring lives; every channel of every topology goes through it.
pub(crate) fn pipeline_channel<T>(
    registry: Option<&MetricsRegistry>,
    labels: &[(&str, &str)],
    capacity: Option<usize>,
) -> (GaugedSender<T>, GaugedReceiver<T>) {
    let gauges = registry.map(|r| QueueGauges::register(r, labels, capacity));
    let raw = match capacity {
        Some(cap) => channel::bounded::<T>(cap),
        None => channel::unbounded::<T>(),
    };
    gauged(raw, gauges)
}

/// Sets a shutdown flag when dropped — including during a panic unwind.
///
/// Stage B owns the run's lifetime: when its loop exits (budget, deadline,
/// stream drained) the source must stop replaying and every upstream stage
/// wind down. Holding this guard on the stage-B thread is the one shared
/// implementation of that shutdown/poison sequence: a clean exit and a
/// panicking matcher both flip the flag, so the source never keeps
/// replaying into a dead pipeline.
pub(crate) struct ShutdownOnDrop {
    flag: Arc<AtomicBool>,
}

impl ShutdownOnDrop {
    /// Arms the guard over `flag`.
    pub fn new(flag: Arc<AtomicBool>) -> ShutdownOnDrop {
        ShutdownOnDrop { flag }
    }
}

impl Drop for ShutdownOnDrop {
    fn drop(&mut self) {
        self.flag.store(true, Ordering::SeqCst);
    }
}

/// The topology-independent half of stage B, shared by every pipeline
/// configuration: the pull/tick/backoff loop, the budget cutoff, the
/// classifier, worker accounting, and the shutdown sequence. A topology
/// contributes only two closures — `pull` (materialize up to `k` best
/// pairs) and `tick` (the empty increment of §3.2 driving the
/// `GetComparisons` fallback; returns whether it made or found work).
pub(crate) struct StageB {
    pub start: Instant,
    pub deadline: Duration,
    pub max_comparisons: u64,
    /// Effective worker count (>= 1); `1` keeps classification on the
    /// stage-B thread itself.
    pub match_workers: usize,
    pub matcher: Arc<dyn MatchFunction>,
    pub observer: Observer,
    pub match_tx: GaugedSender<MatchEvent>,
    pub registry: Option<Arc<MetricsRegistry>>,
    pub adaptive: Arc<Mutex<AdaptiveK>>,
    pub ingest_done: Arc<AtomicBool>,
    pub shutdown: Arc<AtomicBool>,
    pub executed_total: Arc<AtomicU64>,
    pub worker_comparisons: Arc<Mutex<Vec<u64>>>,
    pub chaos: ChaosHandle,
    pub supervisor: Arc<Supervisor>,
}

impl StageB {
    /// Runs the loop to completion on the calling thread.
    ///
    /// On every pass: check the budget, pull up to the adaptive `K` best
    /// pairs, classify them; an empty pull runs the idle tick instead,
    /// backing off exponentially between unproductive ticks. The
    /// `ingest_done` flag is read *before* ticking, so when ingestion had
    /// already finished the tick is ordered behind every ingest and a
    /// "no work" result is conclusive — the loop can never abandon an
    /// increment that slipped in between the tick and the check.
    ///
    /// Exiting — cleanly or by panic — sets `shutdown` (stopping the
    /// source) and drops the classifier's match sender (letting the
    /// collector finish).
    pub fn run(
        self,
        mut pull: impl FnMut(usize) -> Vec<MaterializedPair>,
        mut tick: impl FnMut() -> bool,
    ) {
        let _stop_source = ShutdownOnDrop::new(Arc::clone(&self.shutdown));
        let mut pool = (self.match_workers > 1).then(|| {
            MatchPool::new(
                self.match_workers,
                Arc::clone(&self.matcher),
                &self.observer,
                self.registry.clone(),
                self.chaos.clone(),
                Arc::clone(&self.supervisor),
            )
        });
        let mut backoff = IdleBackoff::new();
        let mut classifier = Classifier {
            start: self.start,
            deadline: self.deadline,
            max_comparisons: self.max_comparisons,
            matcher: self.matcher.as_ref(),
            observer: &self.observer,
            match_tx: self.match_tx,
            metrics: self.registry.as_deref().map(|r| {
                ClassifierMetrics::register(r, self.max_comparisons, self.match_workers <= 1)
            }),
            chaos: self.chaos.clone(),
            supervisor: &self.supervisor,
            executed: 0,
        };
        loop {
            if classifier.over_budget() {
                break;
            }
            let k = self.adaptive.lock().k();
            // The merger fault point fires before the pull touches any
            // state, so an injected panic is recovered by simply retrying
            // the pull — and only armed runs pay for the catch_unwind.
            let batch = if self.chaos.is_armed() {
                let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    self.chaos.trip(FaultPoint::Merger, None);
                    pull(k)
                }));
                match attempt {
                    Ok(batch) => batch,
                    Err(_) => {
                        let t0 = Instant::now();
                        let batch = pull(k);
                        self.supervisor.worker_restarted(
                            WorkerRole::Merger,
                            0,
                            t0.elapsed().as_secs_f64(),
                            &self.observer,
                        );
                        batch
                    }
                }
            } else {
                pull(k)
            };
            if batch.is_empty() {
                let done_before_tick = self.ingest_done.load(Ordering::SeqCst);
                if tick() {
                    backoff.reset();
                } else if done_before_tick {
                    break;
                } else {
                    backoff.sleep();
                }
                continue;
            }
            backoff.reset();
            classifier.classify_batch(batch, &self.adaptive, pool.as_mut());
        }
        self.executed_total
            .store(classifier.executed, Ordering::SeqCst);
        *self.worker_comparisons.lock() = match &pool {
            Some(pool) => pool.executed_per_worker().to_vec(),
            None => vec![classifier.executed],
        };
    }
}

/// The collector half of every driver: streams match events to the caller
/// as they are confirmed and returns them in confirmation order. Runs on
/// the caller's thread until every match sender is dropped.
pub(crate) fn collect_matches(
    match_rx: &GaugedReceiver<MatchEvent>,
    mut on_match: impl FnMut(MatchEvent),
) -> Vec<MatchEvent> {
    let mut matches = Vec::new();
    for event in match_rx.iter() {
        on_match(event);
        matches.push(event);
    }
    matches
}

#[cfg(test)]
mod tests {
    use super::*;
    use pier_types::{ProfileId, SourceId};

    #[test]
    fn tokenize_increment_interns_each_token_once() {
        let dictionary = SharedTokenDictionary::new();
        let tokenizer = Tokenizer::default();
        let mut scratch = String::new();
        let inc = vec![
            EntityProfile::new(ProfileId(0), SourceId(0)).with("t", "alpha beta"),
            EntityProfile::new(ProfileId(1), SourceId(0)).with("t", "beta gamma"),
        ];
        let tokenized = tokenize_increment(&dictionary, &tokenizer, 3, inc, &mut scratch);
        assert_eq!(tokenized.seq, 3);
        assert_eq!(tokenized.len(), 2);
        assert!(!tokenized.is_empty());
        // "beta" shared: three distinct tokens total, one id each.
        assert_eq!(dictionary.len(), 3);
        let beta = dictionary.get("beta").unwrap();
        assert!(tokenized.profiles[0].tokens.contains(&beta));
        assert!(tokenized.profiles[1].tokens.contains(&beta));
        for tp in &tokenized.profiles {
            assert!(tp.tokens.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn shutdown_guard_fires_on_clean_exit_and_on_panic() {
        let clean = Arc::new(AtomicBool::new(false));
        {
            let _guard = ShutdownOnDrop::new(Arc::clone(&clean));
            assert!(!clean.load(Ordering::SeqCst));
        }
        assert!(clean.load(Ordering::SeqCst));

        // Poison propagation: a panicking holder still sets the flag.
        let poisoned = Arc::new(AtomicBool::new(false));
        let result = std::panic::catch_unwind({
            let poisoned = Arc::clone(&poisoned);
            move || {
                let _guard = ShutdownOnDrop::new(poisoned);
                panic!("injected stage-B panic");
            }
        });
        assert!(result.is_err());
        assert!(poisoned.load(Ordering::SeqCst));
    }

    struct ConstMatcher {
        is_match: bool,
        panics: bool,
    }

    impl MatchFunction for ConstMatcher {
        fn evaluate(&self, _input: MatchInput<'_>) -> MatchOutcome {
            assert!(!self.panics, "injected matcher panic");
            MatchOutcome {
                is_match: self.is_match,
                similarity: 1.0,
                ops: 1,
            }
        }

        fn profile_size(&self, _profile: &EntityProfile, tokens: &[TokenId]) -> u64 {
            tokens.len() as u64
        }

        fn pair_ops(&self, _size_a: u64, _size_b: u64) -> u64 {
            1
        }

        fn name(&self) -> &'static str {
            "const"
        }
    }

    fn pair(a: u32, b: u32) -> MaterializedPair {
        let profile = |id| Arc::new(EntityProfile::new(ProfileId(id), SourceId(0)));
        let no_tokens: Arc<[TokenId]> = Arc::from(Vec::new());
        MaterializedPair {
            profile_a: profile(a),
            tokens_a: Arc::clone(&no_tokens),
            profile_b: profile(b),
            tokens_b: no_tokens,
        }
    }

    fn stage_b(matcher: ConstMatcher) -> (StageB, GaugedReceiver<MatchEvent>) {
        let (match_tx, match_rx) = pipeline_channel::<MatchEvent>(None, &[], None);
        let mut adaptive = AdaptiveK::new(4, 1, 16);
        adaptive.set_observer(Observer::disabled());
        let stage = StageB {
            start: Instant::now(),
            deadline: Duration::from_secs(10),
            max_comparisons: 1_000,
            match_workers: 1,
            matcher: Arc::new(matcher),
            observer: Observer::disabled(),
            match_tx,
            registry: None,
            adaptive: Arc::new(Mutex::new(adaptive)),
            ingest_done: Arc::new(AtomicBool::new(true)),
            shutdown: Arc::new(AtomicBool::new(false)),
            executed_total: Arc::new(AtomicU64::new(0)),
            worker_comparisons: Arc::new(Mutex::new(Vec::new())),
            chaos: ChaosHandle::disabled(),
            supervisor: Arc::new(Supervisor::new()),
        };
        (stage, match_rx)
    }

    #[test]
    fn stage_b_loop_classifies_then_winds_down() {
        let (stage, match_rx) = stage_b(ConstMatcher {
            is_match: true,
            panics: false,
        });
        let executed_total = Arc::clone(&stage.executed_total);
        let shutdown = Arc::clone(&stage.shutdown);
        let worker_comparisons = Arc::clone(&stage.worker_comparisons);
        let mut batches = vec![vec![pair(0, 1), pair(2, 3)]];
        let mut ticks = 0;
        stage.run(
            |_k| batches.pop().unwrap_or_default(),
            || {
                ticks += 1;
                false
            },
        );
        // Both pairs classified, then one conclusive idle tick ended the
        // loop (ingest_done was set before the run).
        assert_eq!(executed_total.load(Ordering::SeqCst), 2);
        assert_eq!(ticks, 1);
        assert!(shutdown.load(Ordering::SeqCst));
        assert_eq!(*worker_comparisons.lock(), vec![2]);
        assert_eq!(match_rx.iter().count(), 2);
    }

    #[test]
    fn stage_b_panic_propagates_shutdown_and_closes_the_match_stream() {
        let (stage, match_rx) = stage_b(ConstMatcher {
            is_match: false,
            panics: true,
        });
        let shutdown = Arc::clone(&stage.shutdown);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            stage.run(|_k| vec![pair(0, 1)], || false);
        }));
        assert!(result.is_err());
        // The drop guard flipped the flag mid-unwind and the classifier's
        // sender died with the stack frame: the source stops and the
        // collector drains instead of hanging.
        assert!(shutdown.load(Ordering::SeqCst));
        assert_eq!(match_rx.iter().count(), 0);
    }

    #[test]
    fn idle_backoff_doubles_to_the_cap_and_resets() {
        let mut backoff = IdleBackoff::new();
        assert_eq!(backoff.next_delay(), Duration::from_micros(200));
        assert_eq!(backoff.next_delay(), Duration::from_micros(400));
        assert_eq!(backoff.next_delay(), Duration::from_micros(800));
        assert_eq!(backoff.next_delay(), Duration::from_micros(1_600));
        assert_eq!(backoff.next_delay(), Duration::from_micros(3_200));
        // 6.4ms clamps to the 5ms cap and stays there.
        assert_eq!(backoff.next_delay(), Duration::from_millis(5));
        assert_eq!(backoff.next_delay(), Duration::from_millis(5));
        backoff.reset();
        assert_eq!(backoff.next_delay(), IdleBackoff::INITIAL);
    }
}
