//! Stage scaffolding shared by the streaming and sharded drivers.
//!
//! Both `run_streaming` and `run_streaming_sharded` are the same pipeline
//! with a different stage A in the middle: a source replays increments at a
//! configured rate, a tokenize stage interns each profile exactly once
//! against a [`SharedTokenDictionary`] (producing one
//! [`TokenizedIncrement`] per source increment), and a stage B pulls
//! batches, materializes the profile pairs, and classifies them. This
//! module holds those shared pieces so each driver only contributes its
//! actual topology (single blocker vs. router + shard workers).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel;
use parking_lot::Mutex;

use pier_core::AdaptiveK;
use pier_matching::{MatchFunction, MatchInput};
use pier_observe::{Event, Observer, Phase};
use pier_types::{EntityProfile, SharedTokenDictionary, TokenId, Tokenizer};

use crate::report::MatchEvent;

/// A profile together with its interned sorted-distinct token ids.
#[derive(Debug, Clone)]
pub struct TokenizedProfile {
    /// The profile as it arrived.
    pub profile: EntityProfile,
    /// Its sorted distinct token ids in the pipeline's shared dictionary.
    pub tokens: Vec<TokenId>,
}

/// One source increment after the tokenize stage: every profile carries its
/// token ids, so no downstream stage ever re-tokenizes or re-interns.
#[derive(Debug, Clone)]
pub struct TokenizedIncrement {
    /// Position of the increment in the stream (0-based).
    pub seq: u64,
    /// The increment's profiles with their token ids.
    pub profiles: Vec<TokenizedProfile>,
}

impl TokenizedIncrement {
    /// Number of profiles in the increment.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the increment carries no profiles.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }
}

/// Tokenizes one increment against the shared dictionary: each token string
/// is hashed (and, if unseen, allocated) exactly once here, and everything
/// downstream speaks dense ids. `scratch` is the reusable lowercase buffer
/// of the calling thread.
pub fn tokenize_increment(
    dictionary: &SharedTokenDictionary,
    tokenizer: &Tokenizer,
    seq: u64,
    increment: Vec<EntityProfile>,
    scratch: &mut String,
) -> TokenizedIncrement {
    let profiles = increment
        .into_iter()
        .map(|profile| {
            let tokens = dictionary.tokenize_and_intern(tokenizer, &profile, scratch);
            TokenizedProfile { profile, tokens }
        })
        .collect();
    TokenizedIncrement { seq, profiles }
}

/// Spawns the source thread: replays `increments` with `interarrival`
/// pauses, dispatching each through `send` (which returns `false` when the
/// pipeline has gone away). A set `shutdown` flag stops the replay early.
pub(crate) fn spawn_source(
    increments: Vec<Vec<EntityProfile>>,
    interarrival: Duration,
    shutdown: Arc<AtomicBool>,
    mut send: impl FnMut(usize, Vec<EntityProfile>) -> bool + Send + 'static,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        for (i, inc) in increments.into_iter().enumerate() {
            if i > 0 {
                std::thread::sleep(interarrival);
            }
            if shutdown.load(Ordering::SeqCst) || !send(i, inc) {
                break;
            }
        }
        // Dropping `send` (and the channel senders it owns) closes the
        // stream.
    })
}

/// A comparison materialized for lock-free classification: both profiles
/// and their token-id sets, cloned out of whichever store holds them.
pub(crate) struct MaterializedPair {
    pub profile_a: EntityProfile,
    pub tokens_a: Vec<TokenId>,
    pub profile_b: EntityProfile,
    pub tokens_b: Vec<TokenId>,
}

/// The classification tail of stage B, shared by both drivers: evaluate
/// the matcher over a materialized batch, emit `MatchConfirmed` events and
/// [`MatchEvent`]s, time the phase, and feed the adaptive-`K` controller.
pub(crate) struct Classifier<'a> {
    pub start: Instant,
    pub deadline: Duration,
    pub max_comparisons: u64,
    pub matcher: &'a dyn MatchFunction,
    pub observer: &'a Observer,
    pub match_tx: channel::Sender<MatchEvent>,
    pub executed: u64,
}

impl Classifier<'_> {
    /// Whether the run's wall-clock deadline or comparison cap is reached.
    pub fn over_budget(&self) -> bool {
        self.start.elapsed() >= self.deadline || self.executed >= self.max_comparisons
    }

    /// Classifies one batch (stopping early if the budget runs out mid-way)
    /// and records the batch time with the adaptive-`K` controller.
    pub fn classify_batch(&mut self, batch: &[MaterializedPair], adaptive: &Mutex<AdaptiveK>) {
        let t0 = self.start.elapsed().as_secs_f64();
        for pair in batch {
            let outcome = self.matcher.evaluate(MatchInput {
                profile_a: &pair.profile_a,
                tokens_a: &pair.tokens_a,
                profile_b: &pair.profile_b,
                tokens_b: &pair.tokens_b,
            });
            self.executed += 1;
            if outcome.is_match {
                let at = self.start.elapsed();
                let cmp = pier_types::Comparison::new(pair.profile_a.id, pair.profile_b.id);
                self.observer.emit(|| Event::MatchConfirmed {
                    cmp,
                    similarity: outcome.similarity,
                    at_secs: at.as_secs_f64(),
                });
                let _ = self.match_tx.send(MatchEvent {
                    at,
                    pair: cmp,
                    similarity: outcome.similarity,
                });
            }
            if self.over_budget() {
                break;
            }
        }
        let batch_secs = self.start.elapsed().as_secs_f64() - t0;
        self.observer.emit(|| Event::PhaseTiming {
            phase: Phase::Classify,
            secs: batch_secs,
        });
        adaptive.lock().record_batch(batch_secs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pier_types::{ProfileId, SourceId};

    #[test]
    fn tokenize_increment_interns_each_token_once() {
        let dictionary = SharedTokenDictionary::new();
        let tokenizer = Tokenizer::default();
        let mut scratch = String::new();
        let inc = vec![
            EntityProfile::new(ProfileId(0), SourceId(0)).with("t", "alpha beta"),
            EntityProfile::new(ProfileId(1), SourceId(0)).with("t", "beta gamma"),
        ];
        let tokenized = tokenize_increment(&dictionary, &tokenizer, 3, inc, &mut scratch);
        assert_eq!(tokenized.seq, 3);
        assert_eq!(tokenized.len(), 2);
        assert!(!tokenized.is_empty());
        // "beta" shared: three distinct tokens total, one id each.
        assert_eq!(dictionary.len(), 3);
        let beta = dictionary.get("beta").unwrap();
        assert!(tokenized.profiles[0].tokens.contains(&beta));
        assert!(tokenized.profiles[1].tokens.contains(&beta));
        for tp in &tokenized.profiles {
            assert!(tp.tokens.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
