//! Stage scaffolding shared by the streaming and sharded drivers.
//!
//! Both `run_streaming` and `run_streaming_sharded` are the same pipeline
//! with a different stage A in the middle: a source replays increments at a
//! configured rate, a tokenize stage interns each profile exactly once
//! against a [`SharedTokenDictionary`] (producing one
//! [`TokenizedIncrement`] per source increment), and a stage B pulls
//! batches, materializes the profile pairs, and classifies them. This
//! module holds those shared pieces so each driver only contributes its
//! actual topology (single blocker vs. router + shard workers).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use pier_core::AdaptiveK;
use pier_matching::{MatchFunction, MatchInput, MatchOutcome};
use pier_metrics::{Counter, Gauge, GaugedSender, MetricsRegistry};
use pier_observe::{Event, Observer, Phase};
use pier_types::{EntityProfile, SharedTokenDictionary, TokenId, Tokenizer};

use crate::pool::MatchPool;
use crate::report::MatchEvent;

/// A profile together with its interned sorted-distinct token ids.
#[derive(Debug, Clone)]
pub struct TokenizedProfile {
    /// The profile as it arrived.
    pub profile: EntityProfile,
    /// Its sorted distinct token ids in the pipeline's shared dictionary.
    pub tokens: Vec<TokenId>,
}

/// One source increment after the tokenize stage: every profile carries its
/// token ids, so no downstream stage ever re-tokenizes or re-interns.
#[derive(Debug, Clone)]
pub struct TokenizedIncrement {
    /// Position of the increment in the stream (0-based).
    pub seq: u64,
    /// The increment's profiles with their token ids.
    pub profiles: Vec<TokenizedProfile>,
}

impl TokenizedIncrement {
    /// Number of profiles in the increment.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the increment carries no profiles.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }
}

/// Tokenizes one increment against the shared dictionary: each token string
/// is hashed (and, if unseen, allocated) exactly once here, and everything
/// downstream speaks dense ids. `scratch` is the reusable lowercase buffer
/// of the calling thread.
pub fn tokenize_increment(
    dictionary: &SharedTokenDictionary,
    tokenizer: &Tokenizer,
    seq: u64,
    increment: Vec<EntityProfile>,
    scratch: &mut String,
) -> TokenizedIncrement {
    let profiles = increment
        .into_iter()
        .map(|profile| {
            let tokens = dictionary.tokenize_and_intern(tokenizer, &profile, scratch);
            TokenizedProfile { profile, tokens }
        })
        .collect();
    TokenizedIncrement { seq, profiles }
}

/// Spawns the source thread: replays `increments` with `interarrival`
/// pauses, dispatching each through `send` (which returns `false` when the
/// pipeline has gone away). A set `shutdown` flag stops the replay early.
pub(crate) fn spawn_source(
    increments: Vec<Vec<EntityProfile>>,
    interarrival: Duration,
    shutdown: Arc<AtomicBool>,
    mut send: impl FnMut(usize, Vec<EntityProfile>) -> bool + Send + 'static,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        for (i, inc) in increments.into_iter().enumerate() {
            if i > 0 {
                std::thread::sleep(interarrival);
            }
            if shutdown.load(Ordering::SeqCst) || !send(i, inc) {
                break;
            }
        }
        // Dropping `send` (and the channel senders it owns) closes the
        // stream.
    })
}

/// A comparison materialized for lock-free classification: both profiles
/// and their token-id sets, shared with whichever store holds them.
///
/// The fields are `Arc` handles, so materializing a pair is four refcount
/// bumps — no attribute map or token vector is deep-cloned per comparison,
/// and fanning a batch out to match workers shares the same allocations.
pub(crate) struct MaterializedPair {
    pub profile_a: Arc<EntityProfile>,
    pub tokens_a: Arc<[TokenId]>,
    pub profile_b: Arc<EntityProfile>,
    pub tokens_b: Arc<[TokenId]>,
}

/// Shared `# HELP` text for `pier_worker_comparisons_total`, registered by
/// both the pool (one counter per worker) and the sequential classifier
/// (`worker="0"` only).
pub(crate) const WORKER_COMPARISONS_HELP: &str =
    "Comparisons evaluated per match worker (the report's worker_comparisons).";

/// Live classifier metrics: the scraped totals that must equal the final
/// [`crate::RuntimeReport`] exactly (`pier_comparisons_total` ==
/// `report.comparisons`, and in sequential mode
/// `pier_worker_comparisons_total{worker="0"}` == its single
/// `worker_comparisons` entry).
pub(crate) struct ClassifierMetrics {
    comparisons: Arc<Counter>,
    budget_remaining: Arc<Gauge>,
    /// Sequential mode only; pooled runs count per worker in the pool.
    sequential_worker: Option<Arc<Counter>>,
}

impl ClassifierMetrics {
    /// Registers the classifier's live families, seeding the budget gauge
    /// with the run's full comparison cap.
    pub fn register(registry: &MetricsRegistry, max_comparisons: u64, sequential: bool) -> Self {
        let budget_remaining = registry.gauge(
            "pier_budget_remaining",
            "Comparisons left before the run's safety cap.",
            &[],
        );
        budget_remaining.set(max_comparisons.min(i64::MAX as u64) as i64);
        ClassifierMetrics {
            comparisons: registry.counter(
                "pier_comparisons_total",
                "Comparisons executed by the classifier (the report's total).",
                &[],
            ),
            budget_remaining,
            sequential_worker: sequential.then(|| {
                registry.counter(
                    "pier_worker_comparisons_total",
                    WORKER_COMPARISONS_HELP,
                    &[("worker", "0")],
                )
            }),
        }
    }
}

/// The classification tail of stage B, shared by both drivers: evaluate
/// the matcher over a materialized batch, emit `MatchConfirmed` events and
/// [`MatchEvent`]s, time the phase, and feed the adaptive-`K` controller.
pub(crate) struct Classifier<'a> {
    pub start: Instant,
    pub deadline: Duration,
    pub max_comparisons: u64,
    pub matcher: &'a dyn MatchFunction,
    pub observer: &'a Observer,
    pub match_tx: GaugedSender<MatchEvent>,
    pub metrics: Option<ClassifierMetrics>,
    pub executed: u64,
}

impl Classifier<'_> {
    /// Whether the run's wall-clock deadline or comparison cap is reached.
    pub fn over_budget(&self) -> bool {
        self.start.elapsed() >= self.deadline || self.executed >= self.max_comparisons
    }

    /// Classifies one batch (stopping early if the budget runs out mid-way)
    /// and records the batch time with the adaptive-`K` controller.
    ///
    /// With a pool the matcher evaluations fan out across its workers, but
    /// every externally visible effect — comparison accounting,
    /// `MatchConfirmed` events, [`MatchEvent`] delivery, the budget cutoff —
    /// happens here on the coordinator, over the re-sequenced outcomes, in
    /// exactly the order the sequential path produces. The one intentional
    /// difference: the pool always evaluates the whole batch, so a budget
    /// cutoff discards already-computed tail outcomes instead of skipping
    /// their evaluation (the counted comparisons are identical).
    ///
    /// The batch timing fed to the adaptive-`K` controller is wall-clock
    /// in both modes; with `N` workers it reflects the slowest chunk, so
    /// the controller sizes `K` against the pool's aggregate throughput.
    pub fn classify_batch(
        &mut self,
        batch: Vec<MaterializedPair>,
        adaptive: &Mutex<AdaptiveK>,
        pool: Option<&mut MatchPool>,
    ) {
        let t0 = self.start.elapsed().as_secs_f64();
        match pool {
            Some(pool) => {
                let batch = Arc::new(batch);
                let evaluated = pool.evaluate(&batch);
                for (pair, ev) in batch.iter().zip(evaluated) {
                    self.record(pair, &ev.outcome, Some(ev.worker));
                    if self.over_budget() {
                        break;
                    }
                }
            }
            None => {
                for pair in &batch {
                    let outcome = self.matcher.evaluate(MatchInput {
                        profile_a: &pair.profile_a,
                        tokens_a: &pair.tokens_a,
                        profile_b: &pair.profile_b,
                        tokens_b: &pair.tokens_b,
                    });
                    self.record(pair, &outcome, None);
                    if self.over_budget() {
                        break;
                    }
                }
            }
        }
        let batch_secs = self.start.elapsed().as_secs_f64() - t0;
        self.observer.emit(|| Event::PhaseTiming {
            phase: Phase::Classify,
            secs: batch_secs,
        });
        adaptive.lock().record_batch(batch_secs);
    }

    /// Accounts one evaluated pair and emits its match events if confirmed.
    /// `worker` attributes the confirmation to the match worker that
    /// evaluated the pair (parallel mode only; the sequential path stays
    /// untagged, preserving its exact event stream).
    fn record(&mut self, pair: &MaterializedPair, outcome: &MatchOutcome, worker: Option<u16>) {
        self.executed += 1;
        if let Some(m) = &self.metrics {
            m.comparisons.inc();
            m.budget_remaining.dec();
            if let Some(w) = &m.sequential_worker {
                w.inc();
            }
        }
        if outcome.is_match {
            let at = self.start.elapsed();
            let cmp = pier_types::Comparison::new(pair.profile_a.id, pair.profile_b.id);
            let event = || Event::MatchConfirmed {
                cmp,
                similarity: outcome.similarity,
                at_secs: at.as_secs_f64(),
            };
            match worker {
                Some(worker) => self.observer.for_worker(worker).emit(event),
                None => self.observer.emit(event),
            }
            let _ = self.match_tx.send(MatchEvent {
                at,
                pair: cmp,
                similarity: outcome.similarity,
            });
        }
    }
}

/// Exponential backoff for the stage-B idle loop: instead of spinning at a
/// fixed 200µs poll while the input is quiet, consecutive idle ticks sleep
/// 200µs, 400µs, … up to a 5ms cap, and any tick that finds work resets
/// the ladder. The tick itself (the empty increment driving the
/// `GetComparisons` fallback of §3.2) still runs on every iteration — only
/// the sleep between unproductive ticks stretches.
pub(crate) struct IdleBackoff {
    delay: Duration,
}

impl IdleBackoff {
    /// First (and post-reset) sleep between unproductive idle ticks.
    pub const INITIAL: Duration = Duration::from_micros(200);
    /// Ceiling the doubling stops at.
    pub const MAX: Duration = Duration::from_millis(5);

    /// A fresh ladder starting at [`IdleBackoff::INITIAL`].
    pub fn new() -> IdleBackoff {
        IdleBackoff {
            delay: Self::INITIAL,
        }
    }

    /// Drops back to [`IdleBackoff::INITIAL`]; call when a tick made work.
    pub fn reset(&mut self) {
        self.delay = Self::INITIAL;
    }

    /// The next sleep duration, doubling up to [`IdleBackoff::MAX`].
    pub fn next_delay(&mut self) -> Duration {
        let delay = self.delay;
        self.delay = (self.delay * 2).min(Self::MAX);
        delay
    }

    /// Sleeps for [`IdleBackoff::next_delay`].
    pub fn sleep(&mut self) {
        std::thread::sleep(self.next_delay());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pier_types::{ProfileId, SourceId};

    #[test]
    fn tokenize_increment_interns_each_token_once() {
        let dictionary = SharedTokenDictionary::new();
        let tokenizer = Tokenizer::default();
        let mut scratch = String::new();
        let inc = vec![
            EntityProfile::new(ProfileId(0), SourceId(0)).with("t", "alpha beta"),
            EntityProfile::new(ProfileId(1), SourceId(0)).with("t", "beta gamma"),
        ];
        let tokenized = tokenize_increment(&dictionary, &tokenizer, 3, inc, &mut scratch);
        assert_eq!(tokenized.seq, 3);
        assert_eq!(tokenized.len(), 2);
        assert!(!tokenized.is_empty());
        // "beta" shared: three distinct tokens total, one id each.
        assert_eq!(dictionary.len(), 3);
        let beta = dictionary.get("beta").unwrap();
        assert!(tokenized.profiles[0].tokens.contains(&beta));
        assert!(tokenized.profiles[1].tokens.contains(&beta));
        for tp in &tokenized.profiles {
            assert!(tp.tokens.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn idle_backoff_doubles_to_the_cap_and_resets() {
        let mut backoff = IdleBackoff::new();
        assert_eq!(backoff.next_delay(), Duration::from_micros(200));
        assert_eq!(backoff.next_delay(), Duration::from_micros(400));
        assert_eq!(backoff.next_delay(), Duration::from_micros(800));
        assert_eq!(backoff.next_delay(), Duration::from_micros(1_600));
        assert_eq!(backoff.next_delay(), Duration::from_micros(3_200));
        // 6.4ms clamps to the 5ms cap and stays there.
        assert_eq!(backoff.next_delay(), Duration::from_millis(5));
        assert_eq!(backoff.next_delay(), Duration::from_millis(5));
        backoff.reset();
        assert_eq!(backoff.next_delay(), IdleBackoff::INITIAL);
    }
}
