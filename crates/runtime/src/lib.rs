//! Real-time multi-threaded PIER pipeline.
//!
//! Where [`pier-sim`](../pier_sim/index.html) reproduces the paper's
//! experiments on a virtual clock, this crate runs the same components as
//! an actual streaming system — the role Akka Streams plays in the paper's
//! Scala implementation (§7.1):
//!
//! * a **source** thread replays increments at a configurable rate;
//! * a **blocking** thread (stage A) maintains the incremental blocker and
//!   feeds the prioritizer;
//! * a **matching** thread (stage B) pulls batches of the adaptively-sized
//!   `K` best comparisons and classifies them, fanning the matcher
//!   evaluations out over a pool of [`RuntimeConfig::match_workers`]
//!   workers while keeping every emitted event in sequential order;
//! * match events flow to the caller as they are found, with real
//!   timestamps.
//!
//! Shared state uses `parking_lot` locks (blocker behind an `RwLock` —
//! written by stage A, read by stage B — and the emitter behind a `Mutex`);
//! threads communicate over `crossbeam` channels.
//!
//! Setting [`RuntimeConfig::telemetry`] attaches the `pier-metrics` live
//! telemetry subsystem: queue-depth/backpressure gauges on every channel,
//! live comparison/match/budget counters, per-phase latency histograms,
//! and a progressive-recall estimate — all scrapable mid-run through
//! [`pier_metrics::MetricsServer`] (re-exported here as
//! [`MetricsServer`]).
//!
//! Setting [`RuntimeConfig::entities`] attaches the `pier-entity`
//! clustering subsystem: every confirmed match folds into a shared
//! [`EntityIndex`] (the live transitive closure of the match stream),
//! queryable from any thread mid-run and servable over HTTP through
//! [`pier_entity::EntityServer`]; the final report then carries an
//! [`EntitySummary`].

#![warn(missing_docs)]

pub mod pool;
pub mod report;
pub mod sharded;
pub mod stages;
pub mod streaming;

pub use pier_entity::{EntityIndex, EntityServer, EntitySummary};
pub use pier_metrics::{MetricsServer, Telemetry};
pub use pool::chunk_ranges;
pub use report::{DictionaryStats, MatchEvent, RuntimeReport};
pub use sharded::{run_streaming_sharded, run_streaming_sharded_observed};
pub use stages::{tokenize_increment, TokenizedIncrement, TokenizedProfile};
pub use streaming::{default_match_workers, run_streaming, run_streaming_observed, RuntimeConfig};
