//! Real-time multi-threaded PIER pipeline.
//!
//! Where [`pier-sim`](../pier_sim/index.html) reproduces the paper's
//! experiments on a virtual clock, this crate runs the same components as
//! an actual streaming system — the role Akka Streams plays in the paper's
//! Scala implementation (§7.1). The one entry point is the composable
//! [`Pipeline`] builder/executor (see [`pipeline`] for the stage graph):
//!
//! * a **source** thread replays increments at a configurable rate;
//! * **stage A** maintains incremental blocking and feeds the
//!   prioritizer — either a single shared blocker
//!   ([`PipelineBuilder::emitter`]) or a hash-partitioned tokenizer pool →
//!   router → shard workers → merger ([`PipelineBuilder::sharded`]);
//! * a **matching** thread (stage B) pulls batches of the adaptively-sized
//!   `K` best comparisons and classifies them, fanning the matcher
//!   evaluations out over a pool of [`RuntimeConfig::match_workers`]
//!   workers while keeping every emitted event in sequential order;
//! * match events flow to the caller as they are found, with real
//!   timestamps.
//!
//! Observation is always on and composes through one
//! [`pier_observe::ObserverSet`] (re-exported as [`ObserverSet`]): the
//! caller's labelled sinks, plus the implicit `"metrics"` sink when
//! [`RuntimeConfig::telemetry`] is set and the `"entities"` cluster sink
//! when [`RuntimeConfig::entities`] is set. An empty set costs nothing.
//!
//! Shared state uses `parking_lot` locks (blocker behind an `RwLock` —
//! written by stage A, read by stage B — and the emitter behind a `Mutex`);
//! threads communicate over `crossbeam` channels.
//!
//! The pre-`Pipeline` entry points (`run_streaming{,_observed}`,
//! `run_streaming_sharded{,_observed}`) survive one release as deprecated
//! delegating wrappers; see the README migration table.

#![warn(missing_docs)]
#![deny(deprecated)]

pub mod pipeline;
pub mod pool;
pub mod report;
pub mod sharded;
pub mod stages;
pub mod streaming;
pub mod supervisor;

pub use pier_entity::{EntityIndex, EntityServer, EntitySummary};
pub use pier_metrics::{MetricsServer, Telemetry};
pub use pier_observe::ObserverSet;
pub use pipeline::{default_match_workers, Pipeline, PipelineBuilder, RuntimeConfig, ShedPolicy};
pub use pool::chunk_ranges;
pub use report::{DictionaryStats, MatchEvent, RuntimeReport};
#[allow(deprecated)]
pub use sharded::{run_streaming_sharded, run_streaming_sharded_observed};
pub use stages::{tokenize_increment, IdleBackoff, TokenizedIncrement, TokenizedProfile};
#[allow(deprecated)]
pub use streaming::{run_streaming, run_streaming_observed};
pub use supervisor::{DeadLetter, IngestJournal, JournalEntry, Supervisor};
