//! The unified PIER pipeline: one composable builder/executor behind
//! every runtime entry point.
//!
//! The paper's framework (Alg. 1) is a single stage graph; this module is
//! its one threaded implementation:
//!
//! ```text
//!            ┌────────────────────── stage A ──────────────────────┐
//! source ──▶ │ single:  tokenize ─▶ blocker + emitter              │ ─▶ stage B ─▶ collector
//!            │ sharded: tokenizer pool 0..T ─▶ router ─▶ shards 0..N ─▶ merger │   (caller thread)
//!            └─────────────────────────────────────────────────────┘
//! ```
//!
//! A [`Pipeline`] is built once — topology ([`PipelineBuilder::emitter`]
//! for a single shared blocker, [`PipelineBuilder::sharded`] for the
//! hash-partitioned stage A; the unsharded driver *is* the `shards = 1`
//! shape of the same graph), configuration ([`RuntimeConfig`], validated
//! up front by [`RuntimeConfig::validate`] instead of panicking mid-run),
//! and observation ([`pier_observe::ObserverSet`]) — then consumed by
//! [`Pipeline::run`].
//!
//! Observation is always on and composes in exactly one place: the
//! caller's labelled sinks first, then (when [`RuntimeConfig::telemetry`]
//! is set) the `"metrics"` bridge, then (when [`RuntimeConfig::entities`]
//! is set) the `"entities"` cluster sink. An empty set composes to the
//! disabled observer — one branch per would-be event, nothing else — so
//! the zero-cost contract of the old un-`_observed` entry points is
//! preserved without a second code path.
//!
//! Everything topology-independent — the source replay, the stage-B
//! pull/tick/backoff loop with its budget and shutdown/poison sequence
//! ([`crate::stages`]), match collection, and final report assembly
//! ([`crate::report`]) — exists once; a topology contributes only its
//! channel wiring and its `pull`/`tick` closures.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};

use pier_blocking::{IncrementalBlocker, PurgePolicy, SlabStats};
use pier_collections::ScratchStats;
use pier_core::{AdaptiveK, ComparisonEmitter, PierConfig, Strategy};
use pier_entity::{ClusterObserver, EntityIndex, EntityServer};
use pier_matching::MatchFunction;
use pier_metrics::Telemetry;
use pier_observe::{Event, ObserverSet, Phase, PipelineObserver};
use pier_shard::{ProfileStore, ShardMerger, ShardRouter, ShardWorker, ShardedConfig};
use pier_types::{
    EntityProfile, ErKind, PierError, SharedTokenDictionary, TokenId, Tokenizer, WeightedComparison,
};

use crate::report::{DictionaryStats, MatchEvent, RunTotals, RuntimeReport, StageAStats};
use crate::stages::{
    collect_matches, pipeline_channel, spawn_source, tokenize_increment, MaterializedPair, StageB,
    TokenizedIncrement, TokenizedProfile,
};

/// Configuration of a real-time run.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Time between consecutive increments at the source.
    pub interarrival: Duration,
    /// Block purging for the shared blocker (single topology; a sharded
    /// pipeline purges per shard under
    /// [`pier_shard::ShardedConfig::purge_policy`]).
    pub purge_policy: PurgePolicy,
    /// Initial / minimal / maximal adaptive `K`.
    pub k: (usize, usize, usize),
    /// Safety cap on total comparisons (the pipeline stops afterwards).
    pub max_comparisons: u64,
    /// Hard wall-clock deadline; the pipeline winds down when it passes.
    pub deadline: Duration,
    /// Stage-B match workers evaluating comparisons in parallel. Defaults
    /// to the machine's available parallelism; `1` keeps the
    /// classification loop on the stage-B thread itself, reproducing the
    /// single-threaded executor exactly. Any value emits the identical
    /// match set, event order, and comparison count — only wall-clock
    /// throughput changes.
    pub match_workers: usize,
    /// Live telemetry. When set, the pipeline composes a
    /// [`pier_metrics::MetricsObserver`] into its observer set (labelled
    /// `"metrics"`), attaches queue-depth/backpressure gauges to every
    /// pipeline channel, exposes the classifier's live comparison count
    /// and remaining budget, and publishes the final report totals into
    /// the telemetry's registry — ready to scrape with a
    /// [`pier_metrics::MetricsServer`]. `None` (the default) adds a
    /// single branch per channel operation and nothing else.
    pub telemetry: Option<Telemetry>,
    /// Incremental entity clustering. When set, the pipeline composes a
    /// [`pier_entity::ClusterObserver`] into its observer set (labelled
    /// `"entities"`), so every confirmed match folds into the shared
    /// [`EntityIndex`] the moment the stage-B coordinator emits it — in
    /// confirmation order for any [`RuntimeConfig::match_workers`] count —
    /// and the final report carries an [`pier_entity::EntitySummary`].
    /// Keep a clone of the `Arc` to query the evolving partition mid-run,
    /// or let the pipeline serve it over HTTP with
    /// [`PipelineBuilder::serve_entities`]. When
    /// [`RuntimeConfig::telemetry`] is also set, the index additionally
    /// maintains `pier_entity_*` cluster-count/merge-rate gauges in the
    /// telemetry registry. `None` (the default) costs nothing.
    pub entities: Option<Arc<EntityIndex>>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            interarrival: Duration::from_millis(10),
            purge_policy: PurgePolicy::default(),
            k: (64, 4, 65_536),
            max_comparisons: 10_000_000,
            deadline: Duration::from_secs(60),
            match_workers: default_match_workers(),
            telemetry: None,
            entities: None,
        }
    }
}

impl RuntimeConfig {
    /// Checks the configuration for values no run could make sense of,
    /// returning a typed [`PierError::InvalidConfig`] instead of letting
    /// a pipeline thread panic (or spin) mid-run:
    ///
    /// * `match_workers == 0` — there would be nothing to classify on;
    /// * `max_comparisons == 0` — the budget is exhausted before the
    ///   first comparison, so the run can never produce anything;
    /// * a broken adaptive-`K` triple (`min == 0`, `min > max`, or an
    ///   initial value outside `[min, max]`).
    ///
    /// [`PipelineBuilder::build`] calls this automatically.
    pub fn validate(&self) -> Result<(), PierError> {
        let invalid = |parameter: &'static str, message: String| {
            Err(PierError::InvalidConfig { parameter, message })
        };
        if self.match_workers == 0 {
            return invalid(
                "match_workers",
                "must be >= 1 (1 keeps classification on the stage-B thread)".into(),
            );
        }
        if self.max_comparisons == 0 {
            return invalid(
                "max_comparisons",
                "must be >= 1; a zero budget can never execute a comparison".into(),
            );
        }
        let (init, min, max) = self.k;
        if min == 0 {
            return invalid("k", "minimal K must be >= 1".into());
        }
        if min > max {
            return invalid("k", format!("minimal K {min} exceeds maximal K {max}"));
        }
        if init < min || init > max {
            return invalid(
                "k",
                format!("initial K {init} outside its [{min}, {max}] bounds"),
            );
        }
        Ok(())
    }
}

/// The default for [`RuntimeConfig::match_workers`]: the machine's
/// available parallelism, or `1` when it cannot be determined.
pub fn default_match_workers() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// The stage-A topology of a pipeline.
enum StageA {
    /// One shared blocker + one emitter (the `shards = 1` shape).
    Single {
        emitter: Box<dyn ComparisonEmitter + Send>,
    },
    /// Hash-partitioned: tokenizer pool → router → shard workers → merger.
    Sharded { config: ShardedConfig },
}

/// A command processed by one shard worker thread.
enum ShardMsg {
    /// Routed profiles (skeleton, this shard's token-id subset, ghost
    /// floor) to ingest.
    Ingest(Vec<(EntityProfile, Vec<TokenId>, usize)>),
    /// Request for up to `k` weighted comparisons, best first.
    Pull { k: usize },
    /// The idle tick of §3.2; replies whether the shard did/has work.
    Tick,
}

/// A shard worker's reply to `Pull` or `Tick`.
enum ShardReply {
    Batch(Vec<WeightedComparison>),
    Tick(bool),
}

/// Builder for a [`Pipeline`]; see the module docs for the stage graph.
///
/// Defaults: [`RuntimeConfig::default`], a single-blocker stage A running
/// an I-PES emitter over [`pier_core::PierConfig::default`], no observers,
/// no entity serving.
pub struct PipelineBuilder {
    kind: ErKind,
    config: RuntimeConfig,
    stage_a: StageA,
    observers: ObserverSet,
    entity_addr: Option<String>,
}

impl PipelineBuilder {
    /// Replaces the run configuration.
    pub fn config(mut self, config: RuntimeConfig) -> Self {
        self.config = config;
        self
    }

    /// Single-blocker stage A driven by `emitter` (any
    /// [`ComparisonEmitter`]; see [`pier_core::Strategy::build`]).
    pub fn emitter(mut self, emitter: Box<dyn ComparisonEmitter + Send>) -> Self {
        self.stage_a = StageA::Single { emitter };
        self
    }

    /// Hash-partitioned stage A: one worker thread per shard plus a
    /// tokenizer pool, router, and k-way merger.
    pub fn sharded(mut self, config: ShardedConfig) -> Self {
        self.stage_a = StageA::Sharded { config };
        self
    }

    /// Adds one labelled observer sink (stats, JSONL, …) to the set the
    /// pipeline composes at run time.
    pub fn observe(mut self, label: impl Into<String>, sink: Arc<dyn PipelineObserver>) -> Self {
        self.observers.push(label, sink);
        self
    }

    /// Adds every sink of `observers`, preserving order and labels. Also
    /// accepts a bare [`pier_observe::Observer`] handle (labelled `"observer"`).
    pub fn observers(mut self, observers: impl Into<ObserverSet>) -> Self {
        self.observers.extend(observers.into());
        self
    }

    /// Serves [`RuntimeConfig::entities`] over HTTP for the lifetime of
    /// the pipeline: [`PipelineBuilder::build`] binds an [`EntityServer`]
    /// on `addr` (requires `entities` to be set, otherwise building fails
    /// with a typed error). Retrieve it through
    /// [`Pipeline::take_entity_server`] to control its lifetime, or leave
    /// it attached to serve until the pipeline is dropped.
    pub fn serve_entities(mut self, addr: impl Into<String>) -> Self {
        self.entity_addr = Some(addr.into());
        self
    }

    /// Validates the configuration and assembles the [`Pipeline`],
    /// binding the entity server when one was requested.
    ///
    /// Errors with [`PierError::InvalidConfig`] on a nonsensical
    /// configuration ([`RuntimeConfig::validate`], `shards == 0`, or
    /// entity serving without [`RuntimeConfig::entities`]) and with
    /// [`PierError::Io`] when the entity server cannot bind.
    pub fn build(self) -> Result<Pipeline, PierError> {
        self.config.validate()?;
        if let StageA::Sharded { config } = &self.stage_a {
            if config.shards == 0 {
                return Err(PierError::InvalidConfig {
                    parameter: "shards",
                    message: "must be >= 1 (1 reproduces the unsharded topology)".into(),
                });
            }
        }
        let entity_server = match &self.entity_addr {
            Some(addr) => {
                let index =
                    self.config
                        .entities
                        .as_ref()
                        .ok_or_else(|| PierError::InvalidConfig {
                            parameter: "entity_server",
                            message: "serving entities requires RuntimeConfig::entities \
                                  (there is no index to serve)"
                                .into(),
                        })?;
                Some(EntityServer::serve(addr.as_str(), Arc::clone(index))?)
            }
            None => None,
        };
        let mut observer_labels: Vec<String> = self
            .observers
            .labels()
            .iter()
            .map(|l| l.to_string())
            .collect();
        if self.config.telemetry.is_some() {
            observer_labels.push("metrics".into());
        }
        if self.config.entities.is_some() {
            observer_labels.push("entities".into());
        }
        Ok(Pipeline {
            kind: self.kind,
            config: self.config,
            stage_a: self.stage_a,
            observers: self.observers,
            observer_labels,
            entity_server,
        })
    }
}

/// A fully assembled pipeline, ready to consume one stream.
///
/// Built by [`Pipeline::builder`]; executed (once) by [`Pipeline::run`].
pub struct Pipeline {
    kind: ErKind,
    config: RuntimeConfig,
    stage_a: StageA,
    observers: ObserverSet,
    observer_labels: Vec<String>,
    entity_server: Option<EntityServer>,
}

impl Pipeline {
    /// Starts building a pipeline for `kind` (see [`PipelineBuilder`] for
    /// the defaults).
    pub fn builder(kind: ErKind) -> PipelineBuilder {
        PipelineBuilder {
            kind,
            config: RuntimeConfig::default(),
            stage_a: StageA::Single {
                emitter: Strategy::Pes.build(PierConfig::default()),
            },
            observers: ObserverSet::new(),
            entity_addr: None,
        }
    }

    /// The labels of every observer this pipeline will compose at run
    /// time, in delivery order — the caller's sinks plus the implicit
    /// `"metrics"` / `"entities"` sinks its configuration adds.
    pub fn observer_labels(&self) -> &[String] {
        &self.observer_labels
    }

    /// The entity server bound by [`PipelineBuilder::serve_entities`],
    /// if any.
    pub fn entity_server(&self) -> Option<&EntityServer> {
        self.entity_server.as_ref()
    }

    /// Detaches the bound entity server, transferring its lifetime to the
    /// caller (e.g. to keep serving after the run, or to shut it down at
    /// a chosen moment). A server left attached shuts down when the
    /// pipeline is dropped at the end of [`Pipeline::run`].
    pub fn take_entity_server(&mut self) -> Option<EntityServer> {
        self.entity_server.take()
    }

    /// Runs `matcher` over `increments` replayed in real time.
    ///
    /// Blocks the calling thread until the run completes (stream fully
    /// consumed and stage A drained) or the deadline/comparison cap is
    /// hit, and returns the report. Matches are also delivered
    /// incrementally through `on_match` as they are confirmed.
    pub fn run(
        self,
        increments: Vec<Vec<EntityProfile>>,
        matcher: Arc<dyn MatchFunction>,
        on_match: impl FnMut(MatchEvent),
    ) -> RuntimeReport {
        let Pipeline {
            kind,
            config,
            stage_a,
            observers,
            entity_server,
            ..
        } = self;
        // The server (when still attached) outlives the run: queries keep
        // being answered while the pipeline executes, and it shuts down
        // when this binding drops with the returned report ready.
        let _entity_server = entity_server;
        execute(
            kind, increments, stage_a, matcher, config, observers, on_match,
        )
    }
}

/// Per-lane stage-A occupancy: one slab + optional scratch reading per
/// ingest lane (the single emitter, or each shard worker).
type StageAParts = Vec<(SlabStats, Option<ScratchStats>)>;

/// Folds per-lane stage-A occupancy into the report's [`StageAStats`]:
/// slab numbers sum over lanes (each shard owns a disjoint token
/// subspace), scratch numbers take the per-lane maximum (each lane owns
/// an independent accumulator).
fn aggregate_stage_a(parts: &[(SlabStats, Option<ScratchStats>)]) -> Option<StageAStats> {
    if parts.is_empty() {
        return None;
    }
    let mut out = StageAStats::default();
    for (slab, scratch) in parts {
        out.blocks += slab.blocks;
        out.slab_slots += slab.slots;
        if let Some(s) = scratch {
            out.scratch_slots = out.scratch_slots.max(s.slots);
            out.scratch_high_water = out.scratch_high_water.max(s.high_water);
        }
    }
    Some(out)
}

/// The one executor behind every entry point.
fn execute(
    kind: ErKind,
    increments: Vec<Vec<EntityProfile>>,
    stage_a: StageA,
    matcher: Arc<dyn MatchFunction>,
    config: RuntimeConfig,
    observers: ObserverSet,
    mut on_match: impl FnMut(MatchEvent),
) -> RuntimeReport {
    let start = Instant::now();
    let total_profiles: usize = increments.iter().map(Vec::len).sum();
    let telemetry = config.telemetry.clone();
    let registry = telemetry.as_ref().map(|t| Arc::clone(t.registry()));
    let entities = config.entities.clone();
    // THE observer composition point: the caller's sinks in insertion
    // order, then the metrics bridge, then the entity cluster sink — the
    // same delivery order the retired drivers produced by hand-teeing.
    // An empty set composes to the disabled observer (zero cost).
    let observer = {
        let mut set = observers;
        if let Some(t) = &telemetry {
            set.push("metrics", t.observer() as Arc<dyn PipelineObserver>);
        }
        if let Some(index) = &entities {
            set.push(
                "entities",
                Arc::new(ClusterObserver::with_registry(
                    Arc::clone(index),
                    registry.as_deref(),
                )) as Arc<dyn PipelineObserver>,
            );
        }
        set.compose()
    };
    let dictionary = SharedTokenDictionary::new();
    let (match_tx, match_rx) =
        pipeline_channel::<MatchEvent>(registry.as_deref(), &[("queue", "matches")], None);
    let ingest_done = Arc::new(AtomicBool::new(false));
    let shutdown = Arc::new(AtomicBool::new(false));
    let executed_total = Arc::new(AtomicU64::new(0));
    let ingest_errors = Arc::new(Mutex::new(Vec::<String>::new()));
    let match_workers = config.match_workers.max(1);
    let worker_comparisons = Arc::new(Mutex::new(Vec::<u64>::new()));
    let adaptive = {
        let mut k = AdaptiveK::new(config.k.0, config.k.1, config.k.2);
        k.set_observer(observer.clone());
        Arc::new(Mutex::new(k))
    };
    let stage_b = StageB {
        start,
        deadline: config.deadline,
        max_comparisons: config.max_comparisons,
        match_workers,
        matcher: Arc::clone(&matcher),
        observer: observer.clone(),
        match_tx,
        registry: registry.clone(),
        adaptive: Arc::clone(&adaptive),
        ingest_done: Arc::clone(&ingest_done),
        shutdown: Arc::clone(&shutdown),
        executed_total: Arc::clone(&executed_total),
        worker_comparisons: Arc::clone(&worker_comparisons),
    };

    // Only the topology differs below: channel wiring, stage-A threads,
    // and the two stage-B closures (pull up to k best pairs; idle tick).
    let (matches, token_occurrences, stage_a_stats) = match stage_a {
        StageA::Single { mut emitter } => {
            let mut initial_blocker = IncrementalBlocker::with_shared_dictionary(
                kind,
                Tokenizer::default(),
                config.purge_policy,
                dictionary.clone(),
            );
            initial_blocker.set_observer(observer.clone());
            emitter.set_observer(observer.clone());
            let blocker = Arc::new(RwLock::new(initial_blocker));
            let (inc_tx, inc_rx) = pipeline_channel::<Vec<EntityProfile>>(
                registry.as_deref(),
                &[("queue", "increments")],
                Some(1024),
            );
            let token_occurrences = Arc::new(AtomicU64::new(0));

            // Source: replay increments at the configured rate.
            let source = spawn_source(
                increments,
                config.interarrival,
                Arc::clone(&shutdown),
                move |_seq, inc| inc_tx.send(inc).is_ok(),
            );

            // The emitter is owned by a dedicated mutex shared by stages
            // A and B.
            let emitter_slot: Arc<Mutex<&mut (dyn ComparisonEmitter + Send)>> =
                Arc::new(Mutex::new(emitter.as_mut()));

            let mut matches: Vec<MatchEvent> = Vec::new();
            std::thread::scope(|scope| {
                // Stage A: tokenize/intern outside the blocker lock, then
                // block + update the prioritizer.
                {
                    let blocker = Arc::clone(&blocker);
                    let emitter_slot = Arc::clone(&emitter_slot);
                    let ingest_done = Arc::clone(&ingest_done);
                    let adaptive = Arc::clone(&adaptive);
                    let dictionary = dictionary.clone();
                    let token_occurrences = Arc::clone(&token_occurrences);
                    let ingest_errors = Arc::clone(&ingest_errors);
                    let observer = observer.clone();
                    scope.spawn(move || {
                        let tokenizer = Tokenizer::default();
                        let mut scratch = String::new();
                        let mut occurrences = 0u64;
                        for (seq, inc) in inc_rx.iter().enumerate() {
                            adaptive
                                .lock()
                                .record_arrival(start.elapsed().as_secs_f64());
                            let t0 = observer.is_enabled().then(Instant::now);
                            // Interning happens here, before the write
                            // lock: stage B keeps reading the blocker while
                            // token strings are hashed/allocated exactly
                            // once for the whole pipeline.
                            let tokenized = tokenize_increment(
                                &dictionary,
                                &tokenizer,
                                seq as u64,
                                inc,
                                &mut scratch,
                            );
                            let mut ids = Vec::with_capacity(tokenized.len());
                            let mut blocker = blocker.write();
                            for tp in tokenized.profiles {
                                let tokens_in_profile = tp.tokens.len() as u64;
                                match blocker
                                    .try_process_profile_with_token_ids(tp.profile, &tp.tokens)
                                {
                                    Ok(id) => {
                                        occurrences += tokens_in_profile;
                                        ids.push(id);
                                    }
                                    Err(e) => ingest_errors.lock().push(e.to_string()),
                                }
                            }
                            if let Some(t0) = t0 {
                                observer.emit(|| Event::PhaseTiming {
                                    phase: Phase::Block,
                                    secs: t0.elapsed().as_secs_f64(),
                                });
                            }
                            let t1 = observer.is_enabled().then(Instant::now);
                            let mut emitter = emitter_slot.lock();
                            emitter.on_increment(&blocker, &ids);
                            let _ = emitter.drain_ops();
                            if let Some(t1) = t1 {
                                observer.emit(|| Event::PhaseTiming {
                                    phase: Phase::Weight,
                                    secs: t1.elapsed().as_secs_f64(),
                                });
                            }
                            observer.emit(|| Event::IncrementIngested {
                                seq: tokenized.seq,
                                profiles: ids.len(),
                            });
                        }
                        token_occurrences.store(occurrences, Ordering::SeqCst);
                        ingest_done.store(true, Ordering::SeqCst);
                    });
                }

                // Stage B: the shared loop over this topology's closures.
                {
                    let blocker = Arc::clone(&blocker);
                    let emitter_slot = Arc::clone(&emitter_slot);
                    let observer = observer.clone();
                    scope.spawn(move || {
                        // Pull under locks, then materialize the pairs so
                        // classification runs lock-free. Materializing is
                        // four refcount bumps per pair, not a deep clone.
                        let pull = |k: usize| -> Vec<MaterializedPair> {
                            let blocker = blocker.read();
                            let mut emitter = emitter_slot.lock();
                            let t0 = observer.is_enabled().then(Instant::now);
                            let cmps = emitter.next_batch(&blocker, k);
                            if let Some(t0) = t0 {
                                observer.emit(|| Event::PhaseTiming {
                                    phase: Phase::Prune,
                                    secs: t0.elapsed().as_secs_f64(),
                                });
                            }
                            let _ = emitter.drain_ops();
                            cmps.into_iter()
                                .map(|c| MaterializedPair {
                                    profile_a: blocker.profile_handle(c.a),
                                    tokens_a: blocker.tokens_handle(c.a),
                                    profile_b: blocker.profile_handle(c.b),
                                    tokens_b: blocker.tokens_handle(c.b),
                                })
                                .collect()
                        };
                        // The idle tick (the empty increment of §3.2):
                        // lets the GetComparisons fallback generate work
                        // from older data while the input is quiet.
                        let tick = || -> bool {
                            let blocker = blocker.read();
                            let mut emitter = emitter_slot.lock();
                            emitter.on_increment(&blocker, &[]);
                            emitter.drain_ops() > 0 || emitter.has_pending()
                        };
                        stage_b.run(pull, tick);
                    });
                }

                // Collector (this thread): stream matches to the caller.
                matches = collect_matches(&match_rx, &mut on_match);
            });
            source.join().expect("source thread never panics");
            let stage_a_stats = {
                let slab = blocker.read().collection().slab_stats();
                let scratch = emitter_slot.lock().scratch_stats();
                aggregate_stage_a(&[(slab, scratch)])
            };
            (
                matches,
                token_occurrences.load(Ordering::SeqCst),
                stage_a_stats,
            )
        }

        StageA::Sharded {
            config: shard_config,
        } => {
            let shards = shard_config.shards as usize;
            let router = ShardRouter::with_dictionary(
                shard_config.shards,
                Tokenizer::default(),
                dictionary.clone(),
            );
            let store = Arc::new(RwLock::new(ProfileStore::new()));

            // Per-shard command + reply channels.
            let mut cmd_txs = Vec::with_capacity(shards);
            let mut cmd_rxs = Vec::with_capacity(shards);
            let mut reply_txs = Vec::with_capacity(shards);
            let mut reply_rxs = Vec::with_capacity(shards);
            for shard in 0..shards {
                let label = shard.to_string();
                let (tx, rx) = pipeline_channel::<ShardMsg>(
                    registry.as_deref(),
                    &[("queue", "shard_cmd"), ("shard", label.as_str())],
                    None,
                );
                cmd_txs.push(tx);
                cmd_rxs.push(rx);
                let (tx, rx) = pipeline_channel::<ShardReply>(
                    registry.as_deref(),
                    &[("queue", "shard_reply"), ("shard", label.as_str())],
                    None,
                );
                reply_txs.push(tx);
                reply_rxs.push(rx);
            }

            // Tokenizer pool channels: the source dispatches increment
            // `seq` to tokenizer `seq % T`; the router collects from
            // tokenized channel `seq % T`, so increment order survives
            // without `select`.
            let pool = shards.max(1);
            let mut tok_txs = Vec::with_capacity(pool);
            let mut tok_rxs = Vec::with_capacity(pool);
            let mut routed_txs = Vec::with_capacity(pool);
            let mut routed_rxs = Vec::with_capacity(pool);
            for lane in 0..pool {
                let label = lane.to_string();
                let (tx, rx) = pipeline_channel::<(u64, Vec<EntityProfile>)>(
                    registry.as_deref(),
                    &[("queue", "tokenizer"), ("lane", label.as_str())],
                    Some(64),
                );
                tok_txs.push(tx);
                tok_rxs.push(rx);
                let (tx, rx) = pipeline_channel::<TokenizedIncrement>(
                    registry.as_deref(),
                    &[("queue", "routed"), ("lane", label.as_str())],
                    Some(64),
                );
                routed_txs.push(tx);
                routed_rxs.push(rx);
            }

            // Source: replay increments at the configured rate,
            // round-robin over the tokenizer pool.
            let source = spawn_source(
                increments,
                config.interarrival,
                Arc::clone(&shutdown),
                move |i, inc| tok_txs[i % tok_txs.len()].send((i as u64, inc)).is_ok(),
            );

            let mut matches: Vec<MatchEvent> = Vec::new();
            // Workers are consumed by their threads; each deposits its
            // stage-A occupancy here when its command loop ends.
            let stage_a_parts: Arc<Mutex<StageAParts>> =
                Arc::new(Mutex::new(Vec::with_capacity(shards)));
            std::thread::scope(|scope| {
                // Shard workers: one thread per shard, each owning its
                // blocker + emitter, exiting when every command sender is
                // dropped.
                for (shard, (cmd_rx, reply_tx)) in cmd_rxs.into_iter().zip(reply_txs).enumerate() {
                    let mut worker = ShardWorker::new(
                        shard as u16,
                        kind,
                        shard_config.strategy,
                        shard_config.pier,
                        shard_config.purge_policy,
                        &observer,
                    );
                    let observer = observer.for_shard(shard as u16);
                    let ingest_errors = Arc::clone(&ingest_errors);
                    let stage_a_parts = Arc::clone(&stage_a_parts);
                    scope.spawn(move || {
                        for msg in cmd_rx.iter() {
                            match msg {
                                ShardMsg::Ingest(batch) => {
                                    let t0 = observer.is_enabled().then(Instant::now);
                                    for e in worker.ingest(&batch) {
                                        ingest_errors.lock().push(e.to_string());
                                    }
                                    if let Some(t0) = t0 {
                                        observer.emit(|| Event::PhaseTiming {
                                            phase: Phase::Weight,
                                            secs: t0.elapsed().as_secs_f64(),
                                        });
                                    }
                                }
                                ShardMsg::Pull { k } => {
                                    let _ = reply_tx.send(ShardReply::Batch(worker.pull(k)));
                                }
                                ShardMsg::Tick => {
                                    let _ = reply_tx.send(ShardReply::Tick(worker.tick()));
                                }
                            }
                        }
                        stage_a_parts
                            .lock()
                            .push((worker.slab_stats(), worker.scratch_stats()));
                    });
                }

                // Tokenizer pool: tokenize + intern increments in parallel
                // against the one shared dictionary; the serial router
                // downstream only hashes ids and touches the store.
                for (tok_rx, routed_tx) in tok_rxs.into_iter().zip(routed_txs) {
                    let dictionary = dictionary.clone();
                    scope.spawn(move || {
                        let tokenizer = Tokenizer::default();
                        let mut scratch = String::new();
                        for (seq, inc) in tok_rx.iter() {
                            let tokenized =
                                tokenize_increment(&dictionary, &tokenizer, seq, inc, &mut scratch);
                            if routed_tx.send(tokenized).is_err() {
                                break;
                            }
                        }
                    });
                }

                // Router/ingest: store globally, compute ghost floors,
                // fan out.
                {
                    let store = Arc::clone(&store);
                    let ingest_done = Arc::clone(&ingest_done);
                    let adaptive = Arc::clone(&adaptive);
                    let cmd_txs = cmd_txs.clone();
                    let router = router.clone();
                    let ingest_errors = Arc::clone(&ingest_errors);
                    let observer = observer.clone();
                    scope.spawn(move || {
                        let mut seq = 0usize;
                        // Round-robin collection mirrors dispatch: a
                        // disconnect on channel `seq % T` means no
                        // increment >= seq was sent.
                        while let Ok(tokenized) = routed_rxs[seq % routed_rxs.len()].recv() {
                            adaptive
                                .lock()
                                .record_arrival(start.elapsed().as_secs_f64());
                            let t0 = observer.is_enabled().then(Instant::now);
                            let mut per_shard: Vec<Vec<(EntityProfile, Vec<TokenId>, usize)>> =
                                (0..cmd_txs.len()).map(|_| Vec::new()).collect();
                            let mut accepted: Vec<TokenizedProfile> =
                                Vec::with_capacity(tokenized.len());
                            {
                                let mut store = store.write();
                                // The whole increment enters the store
                                // before any floor is read, mirroring the
                                // unsharded blocker which blocks a full
                                // increment before generating. Duplicate
                                // ids are skipped and reported, never
                                // fanned out.
                                for tp in tokenized.profiles {
                                    match store.insert(tp.profile.clone(), &tp.tokens) {
                                        Ok(()) => accepted.push(tp),
                                        Err(e) => ingest_errors.lock().push(e.to_string()),
                                    }
                                }
                                for tp in &accepted {
                                    let floor = store.min_token_count(tp.profile.id).unwrap_or(1);
                                    // Shards block and weight only — ship
                                    // them an attribute-less skeleton, not
                                    // a full clone.
                                    for (shard, tokens) in router.route_ids(&tp.tokens) {
                                        per_shard[shard as usize].push((
                                            EntityProfile::new(tp.profile.id, tp.profile.source),
                                            tokens,
                                            floor,
                                        ));
                                    }
                                }
                            }
                            for (shard, batch) in per_shard.into_iter().enumerate() {
                                if !batch.is_empty() {
                                    let _ = cmd_txs[shard].send(ShardMsg::Ingest(batch));
                                }
                            }
                            if let Some(t0) = t0 {
                                observer.emit(|| Event::PhaseTiming {
                                    phase: Phase::Block,
                                    secs: t0.elapsed().as_secs_f64(),
                                });
                            }
                            let profiles = accepted.len();
                            observer.emit(|| Event::IncrementIngested {
                                seq: seq as u64,
                                profiles,
                            });
                            seq += 1;
                        }
                        // All `Ingest` messages are enqueued before this
                        // store, so any thread that *observes* `true` and
                        // then sends `Tick` knows the ticks queue behind
                        // every ingest.
                        ingest_done.store(true, Ordering::SeqCst);
                    });
                }

                // Stage B: the shared loop over this topology's closures.
                {
                    let store = Arc::clone(&store);
                    let observer = observer.clone();
                    let mut merger = ShardMerger::new(shards);
                    merger.set_observer(observer.clone());
                    scope.spawn(move || {
                        // Pull: k-way merge across the shards (each shard
                        // is asked for its best `n` on demand), then
                        // materialize from the global store.
                        let pull = |k: usize| -> Vec<MaterializedPair> {
                            let t0 = observer.is_enabled().then(Instant::now);
                            let cmps = merger.next_batch_with(k, |s, n| {
                                if cmd_txs[s].send(ShardMsg::Pull { k: n }).is_err() {
                                    return Vec::new();
                                }
                                match reply_rxs[s].recv() {
                                    Ok(ShardReply::Batch(batch)) => batch,
                                    _ => Vec::new(),
                                }
                            });
                            if let Some(t0) = t0 {
                                observer.emit(|| Event::PhaseTiming {
                                    phase: Phase::Prune,
                                    secs: t0.elapsed().as_secs_f64(),
                                });
                            }
                            if cmps.is_empty() {
                                return Vec::new();
                            }
                            let store = store.read();
                            cmps.into_iter()
                                .map(|c| MaterializedPair {
                                    profile_a: store.profile_handle(c.a),
                                    tokens_a: store.tokens_handle(c.a),
                                    profile_b: store.profile_handle(c.b),
                                    tokens_b: store.tokens_handle(c.b),
                                })
                                .collect()
                        };
                        // Tick every shard; any shard reporting work keeps
                        // the loop hot.
                        let tick = || -> bool {
                            let mut made_work = false;
                            for tx in &cmd_txs {
                                let _ = tx.send(ShardMsg::Tick);
                            }
                            for rx in &reply_rxs {
                                if let Ok(ShardReply::Tick(m)) = rx.recv() {
                                    made_work |= m;
                                }
                            }
                            made_work
                        };
                        stage_b.run(pull, tick);
                        // Dropping this thread's `cmd_txs` clone (and the
                        // classifier's match sender) lets the shard
                        // workers and the collector exit once the router
                        // thread is done too.
                    });
                }

                // Collector (this thread): stream matches to the caller.
                matches = collect_matches(&match_rx, &mut on_match);
            });
            source.join().expect("source thread never panics");
            let token_occurrences = store.read().token_occurrences();
            let stage_a_stats = aggregate_stage_a(&stage_a_parts.lock());
            (matches, token_occurrences, stage_a_stats)
        }
    };

    let totals = RunTotals {
        start,
        profiles: total_profiles,
        matches,
        comparisons: executed_total.load(Ordering::SeqCst),
        dictionary: DictionaryStats {
            distinct_tokens: dictionary.len(),
            string_bytes: dictionary.string_bytes(),
            token_occurrences,
        },
        ingest_errors: std::mem::take(&mut *ingest_errors.lock()),
        match_workers,
        worker_comparisons: std::mem::take(&mut *worker_comparisons.lock()),
        stage_a: stage_a_stats,
    };
    totals.assemble(entities.as_ref(), telemetry.as_ref())
}
