//! The unified PIER pipeline: one composable builder/executor behind
//! every runtime entry point.
//!
//! The paper's framework (Alg. 1) is a single stage graph; this module is
//! its one threaded implementation:
//!
//! ```text
//!            ┌────────────────────── stage A ──────────────────────┐
//! source ──▶ │ single:  tokenize ─▶ blocker + emitter              │ ─▶ stage B ─▶ collector
//!            │ sharded: tokenizer pool 0..T ─▶ router ─▶ shards 0..N ─▶ merger │   (caller thread)
//!            └─────────────────────────────────────────────────────┘
//! ```
//!
//! A [`Pipeline`] is built once — topology ([`PipelineBuilder::emitter`]
//! for a single shared blocker, [`PipelineBuilder::sharded`] for the
//! hash-partitioned stage A; the unsharded driver *is* the `shards = 1`
//! shape of the same graph), configuration ([`RuntimeConfig`], validated
//! up front by [`RuntimeConfig::validate`] instead of panicking mid-run),
//! and observation ([`pier_observe::ObserverSet`]) — then consumed by
//! [`Pipeline::run`].
//!
//! Observation is always on and composes in exactly one place: the
//! caller's labelled sinks first, then (when [`RuntimeConfig::telemetry`]
//! is set) the `"metrics"` bridge, then (when [`RuntimeConfig::entities`]
//! is set) the `"entities"` cluster sink. An empty set composes to the
//! disabled observer — one branch per would-be event, nothing else — so
//! the zero-cost contract of the old un-`_observed` entry points is
//! preserved without a second code path.
//!
//! Everything topology-independent — the source replay, the stage-B
//! pull/tick/backoff loop with its budget and shutdown/poison sequence
//! ([`crate::stages`]), match collection, and final report assembly
//! ([`crate::report`]) — exists once; a topology contributes only its
//! channel wiring and its `pull`/`tick` closures.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};

use pier_blocking::{IncrementalBlocker, PurgePolicy, SlabStats};
use pier_chaos::{ChaosHandle, FaultKind, FaultPlan, FaultPoint};
use pier_collections::ScratchStats;
use pier_core::{AdaptiveK, ComparisonEmitter, PierConfig, Strategy};
use pier_entity::{ClusterObserver, EntityIndex, EntityServer};
use pier_matching::MatchFunction;
use pier_metrics::Telemetry;
use pier_observe::{Event, Observer, ObserverSet, Phase, PipelineObserver, WorkerRole};
use pier_shard::{ProfileStore, ShardMerger, ShardRouter, ShardWorker, ShardedConfig};
use pier_types::{
    Comparison, EntityProfile, ErKind, PierError, ProfileId, SharedTokenDictionary, SourceId,
    TokenId, Tokenizer, WeightedComparison,
};

use crate::report::{DictionaryStats, MatchEvent, RunTotals, RuntimeReport, StageAStats};
use crate::stages::{
    collect_matches, pipeline_channel, spawn_source, tokenize_increment, MaterializedPair, StageB,
    TokenizedIncrement, TokenizedProfile,
};
use crate::supervisor::{IngestJournal, JournalEntry, Supervisor};

/// Configuration of a real-time run.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Time between consecutive increments at the source.
    pub interarrival: Duration,
    /// Block purging for the shared blocker (single topology; a sharded
    /// pipeline purges per shard under
    /// [`pier_shard::ShardedConfig::purge_policy`]).
    pub purge_policy: PurgePolicy,
    /// Initial / minimal / maximal adaptive `K`.
    pub k: (usize, usize, usize),
    /// Safety cap on total comparisons (the pipeline stops afterwards).
    pub max_comparisons: u64,
    /// Hard wall-clock deadline; the pipeline winds down when it passes.
    pub deadline: Duration,
    /// Stage-B match workers evaluating comparisons in parallel. Defaults
    /// to the machine's available parallelism; `1` keeps the
    /// classification loop on the stage-B thread itself, reproducing the
    /// single-threaded executor exactly. Any value emits the identical
    /// match set, event order, and comparison count — only wall-clock
    /// throughput changes.
    pub match_workers: usize,
    /// Live telemetry. When set, the pipeline composes a
    /// [`pier_metrics::MetricsObserver`] into its observer set (labelled
    /// `"metrics"`), attaches queue-depth/backpressure gauges to every
    /// pipeline channel, exposes the classifier's live comparison count
    /// and remaining budget, and publishes the final report totals into
    /// the telemetry's registry — ready to scrape with a
    /// [`pier_metrics::MetricsServer`]. `None` (the default) adds a
    /// single branch per channel operation and nothing else.
    pub telemetry: Option<Telemetry>,
    /// Incremental entity clustering. When set, the pipeline composes a
    /// [`pier_entity::ClusterObserver`] into its observer set (labelled
    /// `"entities"`), so every confirmed match folds into the shared
    /// [`EntityIndex`] the moment the stage-B coordinator emits it — in
    /// confirmation order for any [`RuntimeConfig::match_workers`] count —
    /// and the final report carries an [`pier_entity::EntitySummary`].
    /// Keep a clone of the `Arc` to query the evolving partition mid-run,
    /// or let the pipeline serve it over HTTP with
    /// [`PipelineBuilder::serve_entities`]. When
    /// [`RuntimeConfig::telemetry`] is also set, the index additionally
    /// maintains `pier_entity_*` cluster-count/merge-rate gauges in the
    /// telemetry registry. `None` (the default) costs nothing.
    pub entities: Option<Arc<EntityIndex>>,
    /// Capacity of the bounded pipeline channels (the match stream and the
    /// per-shard command/reply channels). Bounded channels turn a stalled
    /// downstream stage into backpressure instead of unbounded memory
    /// growth; send paths retry under an [`crate::IdleBackoff`] ladder and
    /// dead-letter a payload the receiver never accepts. Must be >= 1.
    pub channel_capacity: usize,
    /// Profiles each shard's ingest journal retains for crash recovery.
    /// A shard worker that panics is rebuilt by replaying its journal;
    /// once the journal overflows, the oldest entries are evicted (counted,
    /// so a lossy recovery is auditable). Must be >= 1.
    pub journal_capacity: usize,
    /// Deterministic fault injection. When set, the pipeline arms a
    /// [`pier_chaos::ChaosInjector`] over the plan and threads the handle
    /// through every supervised stage; named fault points then panic,
    /// delay, drop sends, or inject malformed profiles at exact event
    /// counts. `None` (the default) reduces every fault check to a single
    /// branch on an unarmed handle.
    pub fault_plan: Option<FaultPlan>,
    /// Load shedding under sustained overload. When set, a pull streak of
    /// [`ShedPolicy::trigger_full_pulls`] consecutive full-`K` batches
    /// switches the pull path to weighted mode and drops comparisons below
    /// [`ShedPolicy::min_weight`] (counted in the report and observable as
    /// `ComparisonsShed`). `None` (the default) never sheds and keeps the
    /// unweighted pull path untouched.
    pub shed: Option<ShedPolicy>,
}

/// Load-shedding policy: under sustained overload, drop only the
/// comparisons whose priority weight says they were least likely to match
/// anyway — the progressive analogue of tail-dropping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShedPolicy {
    /// Comparisons with a merge weight strictly below this are dropped
    /// while overloaded. Must be finite.
    pub min_weight: f64,
    /// Consecutive full pulls that count as sustained overload. Must be
    /// >= 1; higher values shed later.
    pub trigger_full_pulls: u32,
    /// Pull-size ceiling while shedding is armed. The adaptive `K`
    /// otherwise grows until a single pull swallows any backlog, which
    /// would make "full pull" — the overload signal — unobservable. Must
    /// be >= 1.
    pub max_pull: usize,
}

impl Default for ShedPolicy {
    fn default() -> Self {
        ShedPolicy {
            min_weight: 2.0,
            trigger_full_pulls: 8,
            max_pull: 1024,
        }
    }
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            interarrival: Duration::from_millis(10),
            purge_policy: PurgePolicy::default(),
            k: (64, 4, 65_536),
            max_comparisons: 10_000_000,
            deadline: Duration::from_secs(60),
            match_workers: default_match_workers(),
            telemetry: None,
            entities: None,
            channel_capacity: 4096,
            journal_capacity: 65_536,
            fault_plan: None,
            shed: None,
        }
    }
}

impl RuntimeConfig {
    /// Checks the configuration for values no run could make sense of,
    /// returning a typed [`PierError::InvalidConfig`] instead of letting
    /// a pipeline thread panic (or spin) mid-run:
    ///
    /// * `match_workers == 0` — there would be nothing to classify on;
    /// * `max_comparisons == 0` — the budget is exhausted before the
    ///   first comparison, so the run can never produce anything;
    /// * a broken adaptive-`K` triple (`min == 0`, `min > max`, or an
    ///   initial value outside `[min, max]`).
    ///
    /// [`PipelineBuilder::build`] calls this automatically.
    pub fn validate(&self) -> Result<(), PierError> {
        let invalid = |parameter: &'static str, message: String| {
            Err(PierError::InvalidConfig { parameter, message })
        };
        if self.match_workers == 0 {
            return invalid(
                "match_workers",
                "must be >= 1 (1 keeps classification on the stage-B thread)".into(),
            );
        }
        if self.max_comparisons == 0 {
            return invalid(
                "max_comparisons",
                "must be >= 1; a zero budget can never execute a comparison".into(),
            );
        }
        let (init, min, max) = self.k;
        if min == 0 {
            return invalid("k", "minimal K must be >= 1".into());
        }
        if min > max {
            return invalid("k", format!("minimal K {min} exceeds maximal K {max}"));
        }
        if init < min || init > max {
            return invalid(
                "k",
                format!("initial K {init} outside its [{min}, {max}] bounds"),
            );
        }
        if self.channel_capacity == 0 {
            return invalid(
                "channel_capacity",
                "must be >= 1; a zero-capacity channel can never transfer anything".into(),
            );
        }
        if self.journal_capacity == 0 {
            return invalid(
                "journal_capacity",
                "must be >= 1; recovery needs at least one journaled profile".into(),
            );
        }
        if let Some(shed) = &self.shed {
            if !shed.min_weight.is_finite() {
                return invalid("shed", "min_weight must be finite".into());
            }
            if shed.trigger_full_pulls == 0 {
                return invalid(
                    "shed",
                    "trigger_full_pulls must be >= 1; zero would shed from the first pull".into(),
                );
            }
            if shed.max_pull == 0 {
                return invalid("shed", "max_pull must be >= 1".into());
            }
        }
        Ok(())
    }
}

/// The pull-side overload detector + filter behind [`ShedPolicy`]: counts
/// consecutive full-`K` pulls and, past the trigger, drops below-threshold
/// weights (counting each drop through the supervisor).
struct Shedder {
    policy: ShedPolicy,
    full_pulls: u32,
}

impl Shedder {
    fn new(policy: ShedPolicy) -> Shedder {
        Shedder {
            policy,
            full_pulls: 0,
        }
    }

    /// Bounds a pull request so overload stays observable (see
    /// [`ShedPolicy::max_pull`]).
    fn clamp(&self, k: usize) -> usize {
        k.min(self.policy.max_pull)
    }

    fn apply(
        &mut self,
        k: usize,
        batch: Vec<WeightedComparison>,
        supervisor: &Supervisor,
        observer: &Observer,
    ) -> Vec<Comparison> {
        if batch.len() >= k {
            self.full_pulls = self.full_pulls.saturating_add(1);
        } else {
            self.full_pulls = 0;
        }
        if self.full_pulls < self.policy.trigger_full_pulls {
            return batch.into_iter().map(|wc| wc.cmp).collect();
        }
        let before = batch.len();
        let kept: Vec<Comparison> = batch
            .into_iter()
            .filter(|wc| wc.weight >= self.policy.min_weight)
            .map(|wc| wc.cmp)
            .collect();
        supervisor.shed_comparisons(before - kept.len(), observer);
        kept
    }
}

/// The default for [`RuntimeConfig::match_workers`]: the machine's
/// available parallelism, or `1` when it cannot be determined.
pub fn default_match_workers() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// The stage-A topology of a pipeline.
enum StageA {
    /// One shared blocker + one emitter (the `shards = 1` shape).
    Single {
        emitter: Box<dyn ComparisonEmitter + Send>,
    },
    /// Hash-partitioned: tokenizer pool → router → shard workers → merger.
    Sharded { config: ShardedConfig },
}

/// A command processed by one shard worker thread.
enum ShardMsg {
    /// Routed profiles (skeleton, this shard's token-id subset, ghost
    /// floor) to ingest.
    Ingest(Vec<(EntityProfile, Vec<TokenId>, usize)>),
    /// Request for up to `k` weighted comparisons, best first.
    Pull { k: usize },
    /// The idle tick of §3.2; replies whether the shard did/has work.
    Tick,
}

/// A shard worker's reply to `Pull` or `Tick`.
enum ShardReply {
    Batch(Vec<WeightedComparison>),
    Tick(bool),
}

/// Builder for a [`Pipeline`]; see the module docs for the stage graph.
///
/// Defaults: [`RuntimeConfig::default`], a single-blocker stage A running
/// an I-PES emitter over [`pier_core::PierConfig::default`], no observers,
/// no entity serving.
pub struct PipelineBuilder {
    kind: ErKind,
    config: RuntimeConfig,
    stage_a: StageA,
    observers: ObserverSet,
    entity_addr: Option<String>,
}

impl PipelineBuilder {
    /// Replaces the run configuration.
    pub fn config(mut self, config: RuntimeConfig) -> Self {
        self.config = config;
        self
    }

    /// Single-blocker stage A driven by `emitter` (any
    /// [`ComparisonEmitter`]; see [`pier_core::Strategy::build`]).
    pub fn emitter(mut self, emitter: Box<dyn ComparisonEmitter + Send>) -> Self {
        self.stage_a = StageA::Single { emitter };
        self
    }

    /// Hash-partitioned stage A: one worker thread per shard plus a
    /// tokenizer pool, router, and k-way merger.
    pub fn sharded(mut self, config: ShardedConfig) -> Self {
        self.stage_a = StageA::Sharded { config };
        self
    }

    /// Adds one labelled observer sink (stats, JSONL, …) to the set the
    /// pipeline composes at run time.
    pub fn observe(mut self, label: impl Into<String>, sink: Arc<dyn PipelineObserver>) -> Self {
        self.observers.push(label, sink);
        self
    }

    /// Adds every sink of `observers`, preserving order and labels. Also
    /// accepts a bare [`pier_observe::Observer`] handle (labelled `"observer"`).
    pub fn observers(mut self, observers: impl Into<ObserverSet>) -> Self {
        self.observers.extend(observers.into());
        self
    }

    /// Serves [`RuntimeConfig::entities`] over HTTP for the lifetime of
    /// the pipeline: [`PipelineBuilder::build`] binds an [`EntityServer`]
    /// on `addr` (requires `entities` to be set, otherwise building fails
    /// with a typed error). Retrieve it through
    /// [`Pipeline::take_entity_server`] to control its lifetime, or leave
    /// it attached to serve until the pipeline is dropped.
    pub fn serve_entities(mut self, addr: impl Into<String>) -> Self {
        self.entity_addr = Some(addr.into());
        self
    }

    /// Validates the configuration and assembles the [`Pipeline`],
    /// binding the entity server when one was requested.
    ///
    /// Errors with [`PierError::InvalidConfig`] on a nonsensical
    /// configuration ([`RuntimeConfig::validate`], `shards == 0`, or
    /// entity serving without [`RuntimeConfig::entities`]) and with
    /// [`PierError::Io`] when the entity server cannot bind.
    pub fn build(self) -> Result<Pipeline, PierError> {
        self.config.validate()?;
        if let StageA::Sharded { config } = &self.stage_a {
            if config.shards == 0 {
                return Err(PierError::InvalidConfig {
                    parameter: "shards",
                    message: "must be >= 1 (1 reproduces the unsharded topology)".into(),
                });
            }
        }
        let entity_server = match &self.entity_addr {
            Some(addr) => {
                let index =
                    self.config
                        .entities
                        .as_ref()
                        .ok_or_else(|| PierError::InvalidConfig {
                            parameter: "entity_server",
                            message: "serving entities requires RuntimeConfig::entities \
                                  (there is no index to serve)"
                                .into(),
                        })?;
                Some(EntityServer::serve(addr.as_str(), Arc::clone(index))?)
            }
            None => None,
        };
        let mut observer_labels: Vec<String> = self
            .observers
            .labels()
            .iter()
            .map(|l| l.to_string())
            .collect();
        if self.config.telemetry.is_some() {
            observer_labels.push("metrics".into());
        }
        if self.config.entities.is_some() {
            observer_labels.push("entities".into());
        }
        Ok(Pipeline {
            kind: self.kind,
            config: self.config,
            stage_a: self.stage_a,
            observers: self.observers,
            observer_labels,
            entity_server,
        })
    }
}

/// A fully assembled pipeline, ready to consume one stream.
///
/// Built by [`Pipeline::builder`]; executed (once) by [`Pipeline::run`].
pub struct Pipeline {
    kind: ErKind,
    config: RuntimeConfig,
    stage_a: StageA,
    observers: ObserverSet,
    observer_labels: Vec<String>,
    entity_server: Option<EntityServer>,
}

impl Pipeline {
    /// Starts building a pipeline for `kind` (see [`PipelineBuilder`] for
    /// the defaults).
    pub fn builder(kind: ErKind) -> PipelineBuilder {
        PipelineBuilder {
            kind,
            config: RuntimeConfig::default(),
            stage_a: StageA::Single {
                emitter: Strategy::Pes.build(PierConfig::default()),
            },
            observers: ObserverSet::new(),
            entity_addr: None,
        }
    }

    /// The labels of every observer this pipeline will compose at run
    /// time, in delivery order — the caller's sinks plus the implicit
    /// `"metrics"` / `"entities"` sinks its configuration adds.
    pub fn observer_labels(&self) -> &[String] {
        &self.observer_labels
    }

    /// The entity server bound by [`PipelineBuilder::serve_entities`],
    /// if any.
    pub fn entity_server(&self) -> Option<&EntityServer> {
        self.entity_server.as_ref()
    }

    /// Detaches the bound entity server, transferring its lifetime to the
    /// caller (e.g. to keep serving after the run, or to shut it down at
    /// a chosen moment). A server left attached shuts down when the
    /// pipeline is dropped at the end of [`Pipeline::run`].
    pub fn take_entity_server(&mut self) -> Option<EntityServer> {
        self.entity_server.take()
    }

    /// Runs `matcher` over `increments` replayed in real time.
    ///
    /// Blocks the calling thread until the run completes (stream fully
    /// consumed and stage A drained) or the deadline/comparison cap is
    /// hit, and returns the report. Matches are also delivered
    /// incrementally through `on_match` as they are confirmed.
    pub fn run(
        self,
        increments: Vec<Vec<EntityProfile>>,
        matcher: Arc<dyn MatchFunction>,
        on_match: impl FnMut(MatchEvent),
    ) -> RuntimeReport {
        let Pipeline {
            kind,
            config,
            stage_a,
            observers,
            entity_server,
            ..
        } = self;
        // The server (when still attached) outlives the run: queries keep
        // being answered while the pipeline executes, and it shuts down
        // when this binding drops with the returned report ready.
        let _entity_server = entity_server;
        execute(
            kind, increments, stage_a, matcher, config, observers, on_match,
        )
    }
}

/// Per-lane stage-A occupancy: one slab + optional scratch reading per
/// ingest lane (the single emitter, or each shard worker).
type StageAParts = Vec<(SlabStats, Option<ScratchStats>)>;

/// Folds per-lane stage-A occupancy into the report's [`StageAStats`]:
/// slab numbers sum over lanes (each shard owns a disjoint token
/// subspace), scratch numbers take the per-lane maximum (each lane owns
/// an independent accumulator).
fn aggregate_stage_a(parts: &[(SlabStats, Option<ScratchStats>)]) -> Option<StageAStats> {
    if parts.is_empty() {
        return None;
    }
    let mut out = StageAStats::default();
    for (slab, scratch) in parts {
        out.blocks += slab.blocks;
        out.slab_slots += slab.slots;
        if let Some(s) = scratch {
            out.scratch_slots = out.scratch_slots.max(s.slots);
            out.scratch_high_water = out.scratch_high_water.max(s.high_water);
        }
    }
    Some(out)
}

/// Fires the `stage_a_ingest` fault point under an unwind guard. The trip
/// happens before the increment mutates any state, so an injected panic is
/// recovered by simply continuing (counted as a stage-A restart); a delay
/// has already been served inside the trip; any other kind is returned for
/// the ingest site to honor.
fn trip_stage_a_ingest(
    chaos: &ChaosHandle,
    supervisor: &Supervisor,
    observer: &Observer,
) -> Option<FaultKind> {
    let t0 = Instant::now();
    match catch_unwind(AssertUnwindSafe(|| {
        chaos.trip(FaultPoint::StageAIngest, None)
    })) {
        Ok(kind) => kind,
        Err(_) => {
            supervisor.worker_restarted(
                WorkerRole::StageA,
                0,
                t0.elapsed().as_secs_f64(),
                observer,
            );
            None
        }
    }
}

/// Mints the injector's next malformed profile and tokenizes it like any
/// arriving profile, so it flows through blocking and weighting normally —
/// and panics (via the poison registry) the moment a supervised ingest
/// touches it. Its tokens are unique to the injection, so it shares no
/// block with any real profile and cannot change their ghost floors.
fn poison_profile(
    chaos: &ChaosHandle,
    dictionary: &SharedTokenDictionary,
    tokenizer: &Tokenizer,
    scratch: &mut String,
) -> Option<TokenizedProfile> {
    let (id, text) = chaos.poison_payload()?;
    let profile = EntityProfile::new(ProfileId(id), SourceId(0)).with("chaos", text);
    let tokens = dictionary.tokenize_and_intern(tokenizer, &profile, scratch);
    Some(TokenizedProfile { profile, tokens })
}

/// Rebuilds a fresh shard worker's state by re-ingesting the journal.
/// Journal entries already survived one ingest, so errors (duplicates
/// rejected again by the fresh blocker) are expected and dropped.
fn replay_journal(worker: &mut ShardWorker, journal: &IngestJournal) {
    for entry in journal.entries() {
        let _ = worker.ingest(std::slice::from_ref(entry));
    }
}

/// Re-ingests a batch that killed a shard worker one profile at a time,
/// isolating the poison: a profile that panics again is quarantined into
/// the dead-letter queue (and the worker rebuilt once more, since the
/// repeat panic may have corrupted it too); every survivor lands in the
/// journal as usual.
#[allow(clippy::too_many_arguments)]
fn retry_batch_individually(
    worker: &mut ShardWorker,
    journal: &mut IngestJournal,
    batch: &[JournalEntry],
    shard: u16,
    fresh: &dyn Fn() -> ShardWorker,
    supervisor: &Supervisor,
    observer: &Observer,
    ingest_errors: &Mutex<Vec<String>>,
) {
    for entry in batch {
        if supervisor.is_quarantined(entry.0.id.0) {
            continue;
        }
        match catch_unwind(AssertUnwindSafe(|| {
            worker.ingest(std::slice::from_ref(entry))
        })) {
            Ok(errors) => {
                journal.record(entry);
                for e in errors {
                    ingest_errors.lock().push(e.to_string());
                }
            }
            Err(_) => {
                supervisor.quarantine_profile(entry.0.id.0, Some(shard), observer);
                *worker = fresh();
                replay_journal(worker, journal);
            }
        }
    }
}

/// The one executor behind every entry point.
fn execute(
    kind: ErKind,
    increments: Vec<Vec<EntityProfile>>,
    stage_a: StageA,
    matcher: Arc<dyn MatchFunction>,
    config: RuntimeConfig,
    observers: ObserverSet,
    mut on_match: impl FnMut(MatchEvent),
) -> RuntimeReport {
    let start = Instant::now();
    let total_profiles: usize = increments.iter().map(Vec::len).sum();
    let telemetry = config.telemetry.clone();
    let registry = telemetry.as_ref().map(|t| Arc::clone(t.registry()));
    let entities = config.entities.clone();
    // THE observer composition point: the caller's sinks in insertion
    // order, then the metrics bridge, then the entity cluster sink — the
    // same delivery order the retired drivers produced by hand-teeing.
    // An empty set composes to the disabled observer (zero cost).
    let observer = {
        let mut set = observers;
        if let Some(t) = &telemetry {
            set.push("metrics", t.observer() as Arc<dyn PipelineObserver>);
        }
        if let Some(index) = &entities {
            set.push(
                "entities",
                Arc::new(ClusterObserver::with_registry(
                    Arc::clone(index),
                    registry.as_deref(),
                )) as Arc<dyn PipelineObserver>,
            );
        }
        set.compose()
    };
    // The fault-injection handle (unarmed unless a plan is configured —
    // one branch per fault point) and the run-wide fault ledger.
    let chaos = ChaosHandle::from_plan(config.fault_plan.clone());
    let supervisor = Arc::new(Supervisor::new());
    let dictionary = SharedTokenDictionary::new();
    let (match_tx, match_rx) = pipeline_channel::<MatchEvent>(
        registry.as_deref(),
        &[("queue", "matches")],
        Some(config.channel_capacity),
    );
    let ingest_done = Arc::new(AtomicBool::new(false));
    let shutdown = Arc::new(AtomicBool::new(false));
    let executed_total = Arc::new(AtomicU64::new(0));
    let ingest_errors = Arc::new(Mutex::new(Vec::<String>::new()));
    let match_workers = config.match_workers.max(1);
    let worker_comparisons = Arc::new(Mutex::new(Vec::<u64>::new()));
    let adaptive = {
        let mut k = AdaptiveK::new(config.k.0, config.k.1, config.k.2);
        k.set_observer(observer.clone());
        Arc::new(Mutex::new(k))
    };
    let stage_b = StageB {
        start,
        deadline: config.deadline,
        max_comparisons: config.max_comparisons,
        match_workers,
        matcher: Arc::clone(&matcher),
        observer: observer.clone(),
        match_tx,
        registry: registry.clone(),
        adaptive: Arc::clone(&adaptive),
        ingest_done: Arc::clone(&ingest_done),
        shutdown: Arc::clone(&shutdown),
        executed_total: Arc::clone(&executed_total),
        worker_comparisons: Arc::clone(&worker_comparisons),
        chaos: chaos.clone(),
        supervisor: Arc::clone(&supervisor),
    };

    // Only the topology differs below: channel wiring, stage-A threads,
    // and the two stage-B closures (pull up to k best pairs; idle tick).
    let (matches, token_occurrences, stage_a_stats) = match stage_a {
        StageA::Single { mut emitter } => {
            let mut initial_blocker = IncrementalBlocker::with_shared_dictionary(
                kind,
                Tokenizer::default(),
                config.purge_policy,
                dictionary.clone(),
            );
            initial_blocker.set_observer(observer.clone());
            emitter.set_observer(observer.clone());
            let blocker = Arc::new(RwLock::new(initial_blocker));
            let (inc_tx, inc_rx) = pipeline_channel::<Vec<EntityProfile>>(
                registry.as_deref(),
                &[("queue", "increments")],
                Some(1024),
            );
            let token_occurrences = Arc::new(AtomicU64::new(0));

            // Source: replay increments at the configured rate.
            let source = spawn_source(
                increments,
                config.interarrival,
                Arc::clone(&shutdown),
                move |_seq, inc| inc_tx.send(inc).is_ok(),
            );

            // The emitter is owned by a dedicated mutex shared by stages
            // A and B.
            let emitter_slot: Arc<Mutex<&mut (dyn ComparisonEmitter + Send)>> =
                Arc::new(Mutex::new(emitter.as_mut()));

            let mut matches: Vec<MatchEvent> = Vec::new();
            std::thread::scope(|scope| {
                // Stage A: tokenize/intern outside the blocker lock, then
                // block + update the prioritizer.
                {
                    let blocker = Arc::clone(&blocker);
                    let emitter_slot = Arc::clone(&emitter_slot);
                    let ingest_done = Arc::clone(&ingest_done);
                    let adaptive = Arc::clone(&adaptive);
                    let dictionary = dictionary.clone();
                    let token_occurrences = Arc::clone(&token_occurrences);
                    let ingest_errors = Arc::clone(&ingest_errors);
                    let observer = observer.clone();
                    let chaos = chaos.clone();
                    let supervisor = Arc::clone(&supervisor);
                    scope.spawn(move || {
                        let tokenizer = Tokenizer::default();
                        let mut scratch = String::new();
                        let mut occurrences = 0u64;
                        for (seq, inc) in inc_rx.iter().enumerate() {
                            adaptive
                                .lock()
                                .record_arrival(start.elapsed().as_secs_f64());
                            let t0 = observer.is_enabled().then(Instant::now);
                            // Interning happens here, before the write
                            // lock: stage B keeps reading the blocker while
                            // token strings are hashed/allocated exactly
                            // once for the whole pipeline.
                            let mut tokenized = tokenize_increment(
                                &dictionary,
                                &tokenizer,
                                seq as u64,
                                inc,
                                &mut scratch,
                            );
                            if chaos.is_armed() {
                                if let Some(kind) =
                                    trip_stage_a_ingest(&chaos, &supervisor, &observer)
                                {
                                    if kind == FaultKind::MalformedProfile {
                                        if let Some(tp) = poison_profile(
                                            &chaos,
                                            &dictionary,
                                            &tokenizer,
                                            &mut scratch,
                                        ) {
                                            tokenized.profiles.push(tp);
                                        }
                                    }
                                }
                            }
                            let mut ids = Vec::with_capacity(tokenized.len());
                            let mut blocker = blocker.write();
                            for tp in tokenized.profiles {
                                let tokens_in_profile = tp.tokens.len() as u64;
                                if chaos.is_armed() {
                                    let profile_id = tp.profile.id.0;
                                    if supervisor.is_quarantined(profile_id) {
                                        continue;
                                    }
                                    // The poison trip fires before the
                                    // blocker is touched, so a panicking
                                    // profile can be quarantined and
                                    // skipped without corrupting state.
                                    let attempt = catch_unwind(AssertUnwindSafe(|| {
                                        chaos.poison_trip(profile_id);
                                        blocker.try_process_profile_with_token_ids(
                                            tp.profile.clone(),
                                            &tp.tokens,
                                        )
                                    }));
                                    match attempt {
                                        Ok(Ok(id)) => {
                                            occurrences += tokens_in_profile;
                                            ids.push(id);
                                        }
                                        Ok(Err(e)) => {
                                            if let PierError::DuplicateProfile(dup) = &e {
                                                supervisor.duplicate_profile(*dup, &observer);
                                            }
                                            ingest_errors.lock().push(e.to_string());
                                        }
                                        Err(_) => {
                                            supervisor
                                                .quarantine_profile(profile_id, None, &observer);
                                        }
                                    }
                                    continue;
                                }
                                match blocker
                                    .try_process_profile_with_token_ids(tp.profile, &tp.tokens)
                                {
                                    Ok(id) => {
                                        occurrences += tokens_in_profile;
                                        ids.push(id);
                                    }
                                    Err(e) => {
                                        if let PierError::DuplicateProfile(dup) = &e {
                                            supervisor.duplicate_profile(*dup, &observer);
                                        }
                                        ingest_errors.lock().push(e.to_string());
                                    }
                                }
                            }
                            if let Some(t0) = t0 {
                                observer.emit(|| Event::PhaseTiming {
                                    phase: Phase::Block,
                                    secs: t0.elapsed().as_secs_f64(),
                                });
                            }
                            let t1 = observer.is_enabled().then(Instant::now);
                            let mut emitter = emitter_slot.lock();
                            emitter.on_increment(&blocker, &ids);
                            let _ = emitter.drain_ops();
                            if let Some(t1) = t1 {
                                observer.emit(|| Event::PhaseTiming {
                                    phase: Phase::Weight,
                                    secs: t1.elapsed().as_secs_f64(),
                                });
                            }
                            observer.emit(|| Event::IncrementIngested {
                                seq: tokenized.seq,
                                profiles: ids.len(),
                            });
                        }
                        token_occurrences.store(occurrences, Ordering::SeqCst);
                        ingest_done.store(true, Ordering::SeqCst);
                    });
                }

                // Stage B: the shared loop over this topology's closures.
                {
                    let blocker = Arc::clone(&blocker);
                    let emitter_slot = Arc::clone(&emitter_slot);
                    let observer = observer.clone();
                    let supervisor = Arc::clone(&supervisor);
                    let mut shedder = config.shed.map(Shedder::new);
                    scope.spawn(move || {
                        // Pull under locks, then materialize the pairs so
                        // classification runs lock-free. Materializing is
                        // four refcount bumps per pair, not a deep clone.
                        let pull = |k: usize| -> Vec<MaterializedPair> {
                            let blocker = blocker.read();
                            let mut emitter = emitter_slot.lock();
                            let t0 = observer.is_enabled().then(Instant::now);
                            let cmps = match &mut shedder {
                                None => emitter.next_batch(&blocker, k),
                                // Shedding needs weights: prefer the
                                // emitter's own weighted batch, fall back
                                // to recomputed CBS weights (same dance as
                                // a shard worker's pull).
                                Some(shedder) => {
                                    let k = shedder.clamp(k);
                                    let weighted = match emitter.next_weighted_batch(&blocker, k) {
                                        Some(batch) => batch,
                                        None => {
                                            let collection = blocker.collection();
                                            emitter
                                                .next_batch(&blocker, k)
                                                .into_iter()
                                                .map(|cmp| {
                                                    WeightedComparison::new(
                                                        cmp,
                                                        collection.common_blocks(cmp.a, cmp.b)
                                                            as f64,
                                                    )
                                                })
                                                .collect()
                                        }
                                    };
                                    shedder.apply(k, weighted, &supervisor, &observer)
                                }
                            };
                            if let Some(t0) = t0 {
                                observer.emit(|| Event::PhaseTiming {
                                    phase: Phase::Prune,
                                    secs: t0.elapsed().as_secs_f64(),
                                });
                            }
                            let _ = emitter.drain_ops();
                            cmps.into_iter()
                                .map(|c| MaterializedPair {
                                    profile_a: blocker.profile_handle(c.a),
                                    tokens_a: blocker.tokens_handle(c.a),
                                    profile_b: blocker.profile_handle(c.b),
                                    tokens_b: blocker.tokens_handle(c.b),
                                })
                                .collect()
                        };
                        // The idle tick (the empty increment of §3.2):
                        // lets the GetComparisons fallback generate work
                        // from older data while the input is quiet.
                        let tick = || -> bool {
                            let blocker = blocker.read();
                            let mut emitter = emitter_slot.lock();
                            emitter.on_increment(&blocker, &[]);
                            emitter.drain_ops() > 0 || emitter.has_pending()
                        };
                        stage_b.run(pull, tick);
                    });
                }

                // Collector (this thread): stream matches to the caller.
                matches = collect_matches(&match_rx, &mut on_match);
            });
            if source.join().is_err() {
                ingest_errors
                    .lock()
                    .push(PierError::WorkerPanicked { worker: "source" }.to_string());
            }
            let stage_a_stats = {
                let slab = blocker.read().collection().slab_stats();
                let scratch = emitter_slot.lock().scratch_stats();
                aggregate_stage_a(&[(slab, scratch)])
            };
            (
                matches,
                token_occurrences.load(Ordering::SeqCst),
                stage_a_stats,
            )
        }

        StageA::Sharded {
            config: shard_config,
        } => {
            let shards = shard_config.shards as usize;
            let router = ShardRouter::with_dictionary(
                shard_config.shards,
                Tokenizer::default(),
                dictionary.clone(),
            );
            let store = Arc::new(RwLock::new(ProfileStore::new()));

            // Per-shard command + reply channels.
            let mut cmd_txs = Vec::with_capacity(shards);
            let mut cmd_rxs = Vec::with_capacity(shards);
            let mut reply_txs = Vec::with_capacity(shards);
            let mut reply_rxs = Vec::with_capacity(shards);
            for shard in 0..shards {
                let label = shard.to_string();
                let (tx, rx) = pipeline_channel::<ShardMsg>(
                    registry.as_deref(),
                    &[("queue", "shard_cmd"), ("shard", label.as_str())],
                    Some(config.channel_capacity),
                );
                cmd_txs.push(tx);
                cmd_rxs.push(rx);
                let (tx, rx) = pipeline_channel::<ShardReply>(
                    registry.as_deref(),
                    &[("queue", "shard_reply"), ("shard", label.as_str())],
                    Some(config.channel_capacity),
                );
                reply_txs.push(tx);
                reply_rxs.push(rx);
            }

            // Tokenizer pool channels: the source dispatches increment
            // `seq` to tokenizer `seq % T`; the router collects from
            // tokenized channel `seq % T`, so increment order survives
            // without `select`.
            let pool = shards.max(1);
            let mut tok_txs = Vec::with_capacity(pool);
            let mut tok_rxs = Vec::with_capacity(pool);
            let mut routed_txs = Vec::with_capacity(pool);
            let mut routed_rxs = Vec::with_capacity(pool);
            for lane in 0..pool {
                let label = lane.to_string();
                let (tx, rx) = pipeline_channel::<(u64, Vec<EntityProfile>)>(
                    registry.as_deref(),
                    &[("queue", "tokenizer"), ("lane", label.as_str())],
                    Some(64),
                );
                tok_txs.push(tx);
                tok_rxs.push(rx);
                let (tx, rx) = pipeline_channel::<TokenizedIncrement>(
                    registry.as_deref(),
                    &[("queue", "routed"), ("lane", label.as_str())],
                    Some(64),
                );
                routed_txs.push(tx);
                routed_rxs.push(rx);
            }

            // Source: replay increments at the configured rate,
            // round-robin over the tokenizer pool.
            let source = spawn_source(
                increments,
                config.interarrival,
                Arc::clone(&shutdown),
                move |i, inc| tok_txs[i % tok_txs.len()].send((i as u64, inc)).is_ok(),
            );

            let mut matches: Vec<MatchEvent> = Vec::new();
            // Workers are consumed by their threads; each deposits its
            // stage-A occupancy here when its command loop ends.
            let stage_a_parts: Arc<Mutex<StageAParts>> =
                Arc::new(Mutex::new(Vec::with_capacity(shards)));
            std::thread::scope(|scope| {
                // Shard workers: one thread per shard, each owning its
                // blocker + emitter, exiting when every command sender is
                // dropped. Each thread supervises its own worker: a panic
                // during ingest/pull/tick rebuilds the worker by replaying
                // the thread's ingest journal instead of killing the run,
                // and a profile that panics ingest repeatably is
                // quarantined into the dead-letter queue.
                for (shard, (cmd_rx, reply_tx)) in cmd_rxs.into_iter().zip(reply_txs).enumerate() {
                    let sid = shard as u16;
                    let strategy = shard_config.strategy;
                    let pier = shard_config.pier;
                    let purge = shard_config.purge_policy;
                    let base_observer = observer.clone();
                    let observer = observer.for_shard(sid);
                    let ingest_errors = Arc::clone(&ingest_errors);
                    let stage_a_parts = Arc::clone(&stage_a_parts);
                    let chaos = chaos.clone();
                    let supervisor = Arc::clone(&supervisor);
                    let journal_capacity = config.journal_capacity;
                    scope.spawn(move || {
                        let make_worker = || {
                            let mut w =
                                ShardWorker::new(sid, kind, strategy, pier, purge, &base_observer);
                            w.set_chaos(chaos.clone());
                            w
                        };
                        let mut worker = make_worker();
                        let mut journal = IngestJournal::new(journal_capacity);
                        // Rebuild-and-replay, shared by every recovery
                        // path. Re-emitted comparisons are absorbed by the
                        // merger's CF dedup, so recovery cannot
                        // double-schedule (or double-count) a pair.
                        let rebuild =
                            |worker: &mut ShardWorker, journal: &IngestJournal| -> ShardWorker {
                                let mut fresh = make_worker();
                                replay_journal(&mut fresh, journal);
                                std::mem::replace(worker, fresh)
                            };
                        for msg in cmd_rx.iter() {
                            match msg {
                                ShardMsg::Ingest(mut batch) => {
                                    if supervisor.has_quarantined() {
                                        batch
                                            .retain(|(p, _, _)| !supervisor.is_quarantined(p.id.0));
                                    }
                                    if batch.is_empty() {
                                        continue;
                                    }
                                    let t0 = observer.is_enabled().then(Instant::now);
                                    match catch_unwind(AssertUnwindSafe(|| worker.ingest(&batch))) {
                                        Ok(errors) => {
                                            journal.record_batch(&batch);
                                            for e in errors {
                                                ingest_errors.lock().push(e.to_string());
                                            }
                                        }
                                        Err(_) => {
                                            // The dead worker may be
                                            // mid-mutation: rebuild it from
                                            // the journal, then isolate the
                                            // poison by retrying the batch
                                            // profile-by-profile.
                                            let died_at = Instant::now();
                                            let _ = rebuild(&mut worker, &journal);
                                            retry_batch_individually(
                                                &mut worker,
                                                &mut journal,
                                                &batch,
                                                sid,
                                                &make_worker,
                                                &supervisor,
                                                &observer,
                                                &ingest_errors,
                                            );
                                            supervisor.worker_restarted(
                                                WorkerRole::Shard,
                                                sid,
                                                died_at.elapsed().as_secs_f64(),
                                                &observer,
                                            );
                                        }
                                    }
                                    if let Some(t0) = t0 {
                                        observer.emit(|| Event::PhaseTiming {
                                            phase: Phase::Weight,
                                            secs: t0.elapsed().as_secs_f64(),
                                        });
                                    }
                                }
                                ShardMsg::Pull { k } => {
                                    let batch = catch_unwind(AssertUnwindSafe(|| worker.pull(k)))
                                        .unwrap_or_else(|_| {
                                            let died_at = Instant::now();
                                            let _ = rebuild(&mut worker, &journal);
                                            supervisor.worker_restarted(
                                                WorkerRole::Shard,
                                                sid,
                                                died_at.elapsed().as_secs_f64(),
                                                &observer,
                                            );
                                            Vec::new()
                                        });
                                    let _ = reply_tx.send(ShardReply::Batch(batch));
                                }
                                ShardMsg::Tick => {
                                    let made = catch_unwind(AssertUnwindSafe(|| worker.tick()))
                                        .unwrap_or_else(|_| {
                                            let died_at = Instant::now();
                                            let _ = rebuild(&mut worker, &journal);
                                            supervisor.worker_restarted(
                                                WorkerRole::Shard,
                                                sid,
                                                died_at.elapsed().as_secs_f64(),
                                                &observer,
                                            );
                                            true
                                        });
                                    let _ = reply_tx.send(ShardReply::Tick(made));
                                }
                            }
                        }
                        stage_a_parts
                            .lock()
                            .push((worker.slab_stats(), worker.scratch_stats()));
                    });
                }

                // Tokenizer pool: tokenize + intern increments in parallel
                // against the one shared dictionary; the serial router
                // downstream only hashes ids and touches the store.
                for (tok_rx, routed_tx) in tok_rxs.into_iter().zip(routed_txs) {
                    let dictionary = dictionary.clone();
                    scope.spawn(move || {
                        let tokenizer = Tokenizer::default();
                        let mut scratch = String::new();
                        for (seq, inc) in tok_rx.iter() {
                            let tokenized =
                                tokenize_increment(&dictionary, &tokenizer, seq, inc, &mut scratch);
                            if routed_tx.send(tokenized).is_err() {
                                break;
                            }
                        }
                    });
                }

                // Router/ingest: store globally, compute ghost floors,
                // fan out.
                {
                    let store = Arc::clone(&store);
                    let ingest_done = Arc::clone(&ingest_done);
                    let adaptive = Arc::clone(&adaptive);
                    let cmd_txs = cmd_txs.clone();
                    let router = router.clone();
                    let ingest_errors = Arc::clone(&ingest_errors);
                    let observer = observer.clone();
                    let chaos = chaos.clone();
                    let supervisor = Arc::clone(&supervisor);
                    let dictionary = dictionary.clone();
                    scope.spawn(move || {
                        let tokenizer = Tokenizer::default();
                        let mut scratch = String::new();
                        let mut seq = 0usize;
                        // Round-robin collection mirrors dispatch: a
                        // disconnect on channel `seq % T` means no
                        // increment >= seq was sent.
                        while let Ok(mut tokenized) = routed_rxs[seq % routed_rxs.len()].recv() {
                            adaptive
                                .lock()
                                .record_arrival(start.elapsed().as_secs_f64());
                            if chaos.is_armed() {
                                if let Some(FaultKind::MalformedProfile) =
                                    trip_stage_a_ingest(&chaos, &supervisor, &observer)
                                {
                                    if let Some(poison) = poison_profile(
                                        &chaos,
                                        &dictionary,
                                        &tokenizer,
                                        &mut scratch,
                                    ) {
                                        tokenized.profiles.push(poison);
                                    }
                                }
                            }
                            let t0 = observer.is_enabled().then(Instant::now);
                            let mut per_shard: Vec<Vec<(EntityProfile, Vec<TokenId>, usize)>> =
                                (0..cmd_txs.len()).map(|_| Vec::new()).collect();
                            let mut accepted: Vec<TokenizedProfile> =
                                Vec::with_capacity(tokenized.len());
                            {
                                let mut store = store.write();
                                // The whole increment enters the store
                                // before any floor is read, mirroring the
                                // unsharded blocker which blocks a full
                                // increment before generating. Duplicate
                                // ids are skipped and reported, never
                                // fanned out.
                                for tp in tokenized.profiles {
                                    match store.insert(tp.profile.clone(), &tp.tokens) {
                                        Ok(()) => accepted.push(tp),
                                        Err(e) => {
                                            if let PierError::DuplicateProfile(dup) = &e {
                                                supervisor.duplicate_profile(*dup, &observer);
                                            }
                                            ingest_errors.lock().push(e.to_string());
                                        }
                                    }
                                }
                                for tp in &accepted {
                                    let floor = store.min_token_count(tp.profile.id).unwrap_or(1);
                                    // Shards block and weight only — ship
                                    // them an attribute-less skeleton, not
                                    // a full clone.
                                    for (shard, tokens) in router.route_ids(&tp.tokens) {
                                        per_shard[shard as usize].push((
                                            EntityProfile::new(tp.profile.id, tp.profile.source),
                                            tokens,
                                            floor,
                                        ));
                                    }
                                }
                            }
                            for (shard, batch) in per_shard.into_iter().enumerate() {
                                if !batch.is_empty() {
                                    let _ = cmd_txs[shard].send(ShardMsg::Ingest(batch));
                                }
                            }
                            if let Some(t0) = t0 {
                                observer.emit(|| Event::PhaseTiming {
                                    phase: Phase::Block,
                                    secs: t0.elapsed().as_secs_f64(),
                                });
                            }
                            let profiles = accepted.len();
                            observer.emit(|| Event::IncrementIngested {
                                seq: seq as u64,
                                profiles,
                            });
                            seq += 1;
                        }
                        // All `Ingest` messages are enqueued before this
                        // store, so any thread that *observes* `true` and
                        // then sends `Tick` knows the ticks queue behind
                        // every ingest.
                        ingest_done.store(true, Ordering::SeqCst);
                    });
                }

                // Stage B: the shared loop over this topology's closures.
                {
                    let store = Arc::clone(&store);
                    let observer = observer.clone();
                    let supervisor = Arc::clone(&supervisor);
                    let mut shedder = config.shed.map(Shedder::new);
                    let mut merger = ShardMerger::new(shards);
                    merger.set_observer(observer.clone());
                    scope.spawn(move || {
                        // Pull: k-way merge across the shards (each shard
                        // is asked for its best `n` on demand), then
                        // materialize from the global store.
                        let pull = |k: usize| -> Vec<MaterializedPair> {
                            let t0 = observer.is_enabled().then(Instant::now);
                            let mut refill = |s: usize, n: usize| {
                                if cmd_txs[s].send(ShardMsg::Pull { k: n }).is_err() {
                                    return Vec::new();
                                }
                                match reply_rxs[s].recv() {
                                    Ok(ShardReply::Batch(batch)) => batch,
                                    _ => Vec::new(),
                                }
                            };
                            let cmps = match &mut shedder {
                                None => merger.next_batch_with(k, &mut refill),
                                Some(shedder) => {
                                    let k = shedder.clamp(k);
                                    shedder.apply(
                                        k,
                                        merger.next_weighted_batch_with(k, &mut refill),
                                        &supervisor,
                                        &observer,
                                    )
                                }
                            };
                            if let Some(t0) = t0 {
                                observer.emit(|| Event::PhaseTiming {
                                    phase: Phase::Prune,
                                    secs: t0.elapsed().as_secs_f64(),
                                });
                            }
                            if cmps.is_empty() {
                                return Vec::new();
                            }
                            let store = store.read();
                            cmps.into_iter()
                                .map(|c| MaterializedPair {
                                    profile_a: store.profile_handle(c.a),
                                    tokens_a: store.tokens_handle(c.a),
                                    profile_b: store.profile_handle(c.b),
                                    tokens_b: store.tokens_handle(c.b),
                                })
                                .collect()
                        };
                        // Tick every shard; any shard reporting work keeps
                        // the loop hot.
                        let tick = || -> bool {
                            let mut made_work = false;
                            for tx in &cmd_txs {
                                let _ = tx.send(ShardMsg::Tick);
                            }
                            for rx in &reply_rxs {
                                if let Ok(ShardReply::Tick(m)) = rx.recv() {
                                    made_work |= m;
                                }
                            }
                            made_work
                        };
                        stage_b.run(pull, tick);
                        // Dropping this thread's `cmd_txs` clone (and the
                        // classifier's match sender) lets the shard
                        // workers and the collector exit once the router
                        // thread is done too.
                    });
                }

                // Collector (this thread): stream matches to the caller.
                matches = collect_matches(&match_rx, &mut on_match);
            });
            if source.join().is_err() {
                ingest_errors
                    .lock()
                    .push(PierError::WorkerPanicked { worker: "source" }.to_string());
            }
            let token_occurrences = store.read().token_occurrences();
            let stage_a_stats = aggregate_stage_a(&stage_a_parts.lock());
            (matches, token_occurrences, stage_a_stats)
        }
    };

    let totals = RunTotals {
        start,
        profiles: total_profiles,
        matches,
        comparisons: executed_total.load(Ordering::SeqCst),
        dictionary: DictionaryStats {
            distinct_tokens: dictionary.len(),
            string_bytes: dictionary.string_bytes(),
            token_occurrences,
        },
        ingest_errors: std::mem::take(&mut *ingest_errors.lock()),
        match_workers,
        worker_comparisons: std::mem::take(&mut *worker_comparisons.lock()),
        stage_a: stage_a_stats,
        dead_letters: supervisor.dead_letters(),
        worker_restarts: supervisor.restarts(),
        comparisons_shed: supervisor.comparisons_shed(),
    };
    totals.assemble(entities.as_ref(), telemetry.as_ref())
}
