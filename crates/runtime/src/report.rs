//! Results of a real-time pipeline run.

use std::sync::Arc;
use std::time::{Duration, Instant};

use pier_entity::{EntityIndex, EntitySummary};
use pier_metrics::Telemetry;
use pier_types::{Comparison, GroundTruth, MatchLedger, ProgressTrajectory};

use crate::supervisor::DeadLetter;

/// One classified match, timestamped relative to pipeline start.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchEvent {
    /// When the match was confirmed by the matcher.
    pub at: Duration,
    /// The matching pair.
    pub pair: Comparison,
    /// Similarity reported by the match function.
    pub similarity: f64,
}

/// Size of the pipeline's shared token dictionary at the end of a run,
/// plus how often tokens occurred — enough to estimate what the interned
/// data path saved over shipping owned `String`s between stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DictionaryStats {
    /// Distinct tokens interned over the whole stream.
    pub distinct_tokens: usize,
    /// Total bytes of distinct token text held by the dictionary.
    pub string_bytes: usize,
    /// Total token occurrences ingested (Σ per-profile distinct tokens).
    pub token_occurrences: u64,
}

impl DictionaryStats {
    /// Estimated bytes the id-based data path saved versus materializing an
    /// owned `String` per token occurrence: each occurrence would have cost
    /// roughly one `String` header plus the (average) token text, where the
    /// id path ships a 4-byte `TokenId`. The dictionary itself exists in
    /// both designs, so its storage cancels out.
    pub fn estimated_bytes_saved(&self) -> u64 {
        if self.distinct_tokens == 0 {
            return 0;
        }
        let avg_len = self.string_bytes as u64 / self.distinct_tokens as u64;
        let per_string = avg_len + std::mem::size_of::<String>() as u64;
        let per_id = std::mem::size_of::<pier_types::TokenId>() as u64;
        self.token_occurrences * per_string.saturating_sub(per_id)
    }
}

/// End-of-run occupancy of the stage-A hot-path structures: the dense
/// block slab of each blocker and the epoch-stamped I-WNP scratch
/// accumulator of each emitter. Sharded runs aggregate: slab numbers sum
/// over shards, scratch numbers take the per-lane maximum (each lane owns
/// an independent accumulator). Surfaced by
/// `observed_stream --stage-a-stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageAStats {
    /// Blocks created across all blockers (including purged ones).
    pub blocks: usize,
    /// Block-slab slots allocated across all blockers; the gap to
    /// [`StageAStats::blocks`] is id-space sparsity (per-shard token
    /// subspaces leave gaps).
    pub slab_slots: usize,
    /// Largest scratch-slot capacity any stage-A lane grew to (bounded by
    /// the largest profile id it saw).
    pub scratch_slots: usize,
    /// Largest single-arrival candidate neighborhood any lane accumulated
    /// — the scratch high-water mark.
    pub scratch_high_water: usize,
}

/// Summary of a completed run.
#[derive(Debug, Clone)]
pub struct RuntimeReport {
    /// All matches in confirmation order.
    pub matches: Vec<MatchEvent>,
    /// Total comparisons executed.
    pub comparisons: u64,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Profiles ingested.
    pub profiles: usize,
    /// Shared-dictionary statistics, when the driver interns tokens.
    pub dictionary: Option<DictionaryStats>,
    /// Non-fatal ingest errors (e.g. a profile id arriving twice): the
    /// offending profile is skipped, the run continues, and the error is
    /// reported here instead of panicking a pipeline thread.
    pub ingest_errors: Vec<String>,
    /// Stage-B match workers the run was configured with (1 = the
    /// classification loop ran on the stage-B thread itself).
    pub match_workers: usize,
    /// Comparisons evaluated by each match worker, indexed by worker. A
    /// sequential run has the single entry `[comparisons]`; a pooled run
    /// may sum to slightly more than [`RuntimeReport::comparisons`]
    /// because workers always evaluate their whole chunk while the budget
    /// cutoff happens at the coordinator.
    pub worker_comparisons: Vec<u64>,
    /// End-of-run entity clustering summary, present when the run was
    /// configured with [`crate::RuntimeConfig::entities`]: the transitive
    /// closure of [`RuntimeReport::matches`] folded incrementally into an
    /// [`pier_entity::EntityIndex`] as each match was confirmed.
    pub entity_summary: Option<EntitySummary>,
    /// Stage-A structure occupancy (block slab + I-WNP scratch), when the
    /// driver collected it.
    pub stage_a: Option<StageAStats>,
    /// Work the supervision layer removed from the run instead of crashing
    /// it: quarantined profiles, rejected duplicates, and matches that
    /// could not be delivered. Empty on a healthy run.
    pub dead_letters: Vec<DeadLetter>,
    /// Workers (stage-A lanes, shard workers, the merger, match workers)
    /// rebuilt after a panic.
    pub worker_restarts: u64,
    /// Below-threshold comparisons dropped by load shedding
    /// ([`crate::RuntimeConfig::shed`]); always 0 when shedding is off.
    pub comparisons_shed: u64,
}

impl RuntimeReport {
    /// Number of matches confirmed within `horizon` of the start — the
    /// real-time analogue of early quality.
    pub fn matches_within(&self, horizon: Duration) -> usize {
        self.matches.iter().filter(|m| m.at <= horizon).count()
    }

    /// Comparisons executed per wall-clock second, or 0 for an instant run.
    pub fn comparisons_per_second(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.comparisons as f64 / secs
        } else {
            0.0
        }
    }

    /// The `q`-quantile (`q` ∈ [0, 1]) of match confirmation times
    /// ([`MatchEvent::at`]), using the nearest-rank method. `None` when the
    /// run confirmed no matches.
    ///
    /// This is latency from *pipeline start*, the paper's progressive-recall
    /// axis: p50 answers "by when had half the duplicates been found?".
    pub fn match_latency_percentile(&self, q: f64) -> Option<Duration> {
        if self.matches.is_empty() {
            return None;
        }
        let mut times: Vec<Duration> = self.matches.iter().map(|m| m.at).collect();
        times.sort_unstable();
        let q = q.clamp(0.0, 1.0);
        let rank = ((times.len() as f64 * q).ceil() as usize).clamp(1, times.len());
        Some(times[rank - 1])
    }

    /// Median match confirmation time. `None` if there were no matches.
    pub fn match_latency_p50(&self) -> Option<Duration> {
        self.match_latency_percentile(0.50)
    }

    /// 95th-percentile match confirmation time.
    pub fn match_latency_p95(&self) -> Option<Duration> {
        self.match_latency_percentile(0.95)
    }

    /// 99th-percentile match confirmation time.
    pub fn match_latency_p99(&self) -> Option<Duration> {
        self.match_latency_percentile(0.99)
    }

    /// Publishes the finished run's summary into `telemetry`'s registry,
    /// so the final scrape of a run (taken before
    /// [`pier_metrics::MetricsServer::shutdown`]) carries the totals the
    /// report holds: elapsed wall-clock, profiles, matches, throughput,
    /// and the match-latency percentiles on the progressive-recall axis.
    /// The drivers call this automatically when
    /// [`crate::RuntimeConfig::telemetry`] is set.
    pub fn publish_final(&self, telemetry: &Telemetry) {
        let r = telemetry.registry();
        r.float_gauge(
            "pier_run_elapsed_seconds",
            "Wall-clock duration of the finished run.",
            &[],
        )
        .set(self.elapsed.as_secs_f64());
        r.gauge(
            "pier_run_profiles",
            "Profiles ingested by the finished run.",
            &[],
        )
        .set(self.profiles.min(i64::MAX as usize) as i64);
        r.gauge(
            "pier_run_matches",
            "Matches confirmed by the finished run.",
            &[],
        )
        .set(self.matches.len() as i64);
        r.gauge(
            "pier_run_ingest_errors",
            "Non-fatal ingest errors over the finished run.",
            &[],
        )
        .set(self.ingest_errors.len() as i64);
        r.float_gauge(
            "pier_run_comparisons_per_second",
            "Comparison throughput of the finished run.",
            &[],
        )
        .set(self.comparisons_per_second());
        for (q, quantile) in [(0.50, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
            if let Some(at) = self.match_latency_percentile(q) {
                r.float_gauge(
                    "pier_match_latency_seconds",
                    "Match confirmation latency from pipeline start (nearest-rank percentiles).",
                    &[("quantile", quantile)],
                )
                .set(at.as_secs_f64());
            }
        }
    }

    /// Builds the run's progressive-recall trajectory against a ground
    /// truth: each confirmed match event is credited (duplicates counted
    /// once, non-GT matches ignored) at its confirmation time.
    ///
    /// Unlike the simulator's trajectory (one sample per *executed*
    /// comparison), the report only knows about confirmed matches, so the
    /// comparison axis here advances per match event; the time axis is
    /// exact.
    pub fn progress_trajectory(&self, ground_truth: &GroundTruth) -> ProgressTrajectory {
        let mut trajectory = ProgressTrajectory::for_ground_truth(ground_truth);
        let mut ledger = MatchLedger::new();
        let mut events: Vec<&MatchEvent> = self.matches.iter().collect();
        events.sort_by_key(|m| m.at);
        for m in events {
            let was_match = ledger.credit(ground_truth, m.pair);
            trajectory.record(m.at.as_secs_f64(), was_match);
        }
        trajectory.finish(self.elapsed.as_secs_f64());
        trajectory
    }
}

/// Everything the unified executor hands over for final report assembly.
/// One shared implementation replaces the two per-driver copies: summarize
/// the entity index (when clustering was on) and publish the final totals
/// into the telemetry registry (when telemetry was on).
pub(crate) struct RunTotals {
    pub start: Instant,
    pub profiles: usize,
    pub matches: Vec<MatchEvent>,
    pub comparisons: u64,
    pub dictionary: DictionaryStats,
    pub ingest_errors: Vec<String>,
    pub match_workers: usize,
    pub worker_comparisons: Vec<u64>,
    pub stage_a: Option<StageAStats>,
    pub dead_letters: Vec<DeadLetter>,
    pub worker_restarts: u64,
    pub comparisons_shed: u64,
}

impl RunTotals {
    /// Builds (and, with telemetry, publishes) the final [`RuntimeReport`].
    pub fn assemble(
        self,
        entities: Option<&Arc<EntityIndex>>,
        telemetry: Option<&Telemetry>,
    ) -> RuntimeReport {
        let report = RuntimeReport {
            matches: self.matches,
            comparisons: self.comparisons,
            elapsed: self.start.elapsed(),
            profiles: self.profiles,
            dictionary: Some(self.dictionary),
            ingest_errors: self.ingest_errors,
            match_workers: self.match_workers,
            worker_comparisons: self.worker_comparisons,
            entity_summary: entities.map(|i| i.summary(self.profiles)),
            stage_a: self.stage_a,
            dead_letters: self.dead_letters,
            worker_restarts: self.worker_restarts,
            comparisons_shed: self.comparisons_shed,
        };
        if let Some(t) = telemetry {
            report.publish_final(t);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pier_types::ProfileId;

    #[test]
    fn matches_within_filters_by_time() {
        let pair = Comparison::new(ProfileId(0), ProfileId(1));
        let report = RuntimeReport {
            matches: vec![
                MatchEvent {
                    at: Duration::from_millis(5),
                    pair,
                    similarity: 0.9,
                },
                MatchEvent {
                    at: Duration::from_millis(50),
                    pair: Comparison::new(ProfileId(2), ProfileId(3)),
                    similarity: 0.8,
                },
            ],
            comparisons: 10,
            elapsed: Duration::from_millis(60),
            profiles: 4,
            dictionary: None,
            ingest_errors: Vec::new(),
            match_workers: 1,
            worker_comparisons: vec![10],
            entity_summary: None,
            stage_a: None,
            dead_letters: Vec::new(),
            worker_restarts: 0,
            comparisons_shed: 0,
        };
        assert_eq!(report.matches_within(Duration::from_millis(10)), 1);
        assert_eq!(report.matches_within(Duration::from_millis(100)), 2);
    }

    fn report_with(matches: Vec<MatchEvent>, comparisons: u64, elapsed_ms: u64) -> RuntimeReport {
        RuntimeReport {
            matches,
            comparisons,
            elapsed: Duration::from_millis(elapsed_ms),
            profiles: 0,
            dictionary: None,
            ingest_errors: Vec::new(),
            match_workers: 1,
            worker_comparisons: vec![comparisons],
            entity_summary: None,
            stage_a: None,
            dead_letters: Vec::new(),
            worker_restarts: 0,
            comparisons_shed: 0,
        }
    }

    fn ev(ms: u64, a: u32, b: u32) -> MatchEvent {
        MatchEvent {
            at: Duration::from_millis(ms),
            pair: Comparison::new(ProfileId(a), ProfileId(b)),
            similarity: 1.0,
        }
    }

    #[test]
    fn dictionary_stats_estimate_savings_per_occurrence() {
        // 10 distinct tokens averaging 6 bytes, each occurring 100 times:
        // the string path would ship 24 (String header) + 6 bytes per
        // occurrence where ids ship 4.
        let stats = DictionaryStats {
            distinct_tokens: 10,
            string_bytes: 60,
            token_occurrences: 1_000,
        };
        assert_eq!(stats.estimated_bytes_saved(), 1_000 * (24 + 6 - 4));
        assert_eq!(DictionaryStats::default().estimated_bytes_saved(), 0);
    }

    #[test]
    fn comparisons_per_second_divides_by_elapsed() {
        let report = report_with(vec![], 500, 2_000);
        assert!((report.comparisons_per_second() - 250.0).abs() < 1e-9);
        // Degenerate zero-duration run does not divide by zero.
        let instant = report_with(vec![], 500, 0);
        assert_eq!(instant.comparisons_per_second(), 0.0);
    }

    #[test]
    fn latency_percentiles_use_nearest_rank() {
        let matches: Vec<MatchEvent> = (1..=100).map(|i| ev(i, i as u32, 1000)).collect();
        let report = report_with(matches, 100, 200);
        assert_eq!(report.match_latency_p50(), Some(Duration::from_millis(50)));
        assert_eq!(report.match_latency_p95(), Some(Duration::from_millis(95)));
        assert_eq!(report.match_latency_p99(), Some(Duration::from_millis(99)));
        assert_eq!(
            report.match_latency_percentile(1.0),
            Some(Duration::from_millis(100))
        );
        // q=0 clamps to the first event, out-of-range q is clamped too.
        assert_eq!(
            report.match_latency_percentile(0.0),
            Some(Duration::from_millis(1))
        );
        assert_eq!(
            report.match_latency_percentile(7.0),
            Some(Duration::from_millis(100))
        );
    }

    #[test]
    fn latency_percentiles_on_empty_report_are_none() {
        let report = report_with(vec![], 10, 100);
        assert_eq!(report.match_latency_p50(), None);
        assert_eq!(report.match_latency_p95(), None);
        assert_eq!(report.match_latency_p99(), None);
    }

    #[test]
    fn progress_trajectory_credits_gt_matches_once() {
        let gt = pier_types::GroundTruth::from_pairs([
            (ProfileId(0), ProfileId(1)),
            (ProfileId(2), ProfileId(3)),
            (ProfileId(4), ProfileId(5)),
        ]);
        let report = report_with(
            vec![
                ev(10, 0, 1),
                ev(20, 0, 1), // duplicate report: not credited again
                ev(30, 8, 9), // false positive: not in GT
                ev(40, 2, 3),
            ],
            50,
            100,
        );
        let t = report.progress_trajectory(&gt);
        assert_eq!(t.matches(), 2);
        assert!((t.pc() - 2.0 / 3.0).abs() < 1e-12);
        assert!((t.pc_at_time(0.015) - 1.0 / 3.0).abs() < 1e-12);
        // finish() extends the curve to the run's elapsed time.
        assert!((t.points().last().unwrap().time - 0.1).abs() < 1e-12);
    }

    #[test]
    fn progress_trajectory_sorts_out_of_order_events() {
        // The collector preserves confirmation order, but a caller may have
        // merged reports; the trajectory must still be built time-sorted.
        let gt = pier_types::GroundTruth::from_pairs([
            (ProfileId(0), ProfileId(1)),
            (ProfileId(2), ProfileId(3)),
        ]);
        let report = report_with(vec![ev(40, 2, 3), ev(10, 0, 1)], 2, 100);
        let t = report.progress_trajectory(&gt);
        assert_eq!(t.matches(), 2);
        assert!((t.pc_at_time(0.02) - 0.5).abs() < 1e-12);
    }
}
