//! Results of a real-time pipeline run.

use std::time::Duration;

use pier_types::Comparison;

/// One classified match, timestamped relative to pipeline start.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchEvent {
    /// When the match was confirmed by the matcher.
    pub at: Duration,
    /// The matching pair.
    pub pair: Comparison,
    /// Similarity reported by the match function.
    pub similarity: f64,
}

/// Summary of a completed run.
#[derive(Debug, Clone)]
pub struct RuntimeReport {
    /// All matches in confirmation order.
    pub matches: Vec<MatchEvent>,
    /// Total comparisons executed.
    pub comparisons: u64,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Profiles ingested.
    pub profiles: usize,
}

impl RuntimeReport {
    /// Number of matches confirmed within `horizon` of the start — the
    /// real-time analogue of early quality.
    pub fn matches_within(&self, horizon: Duration) -> usize {
        self.matches.iter().filter(|m| m.at <= horizon).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pier_types::ProfileId;

    #[test]
    fn matches_within_filters_by_time() {
        let pair = Comparison::new(ProfileId(0), ProfileId(1));
        let report = RuntimeReport {
            matches: vec![
                MatchEvent {
                    at: Duration::from_millis(5),
                    pair,
                    similarity: 0.9,
                },
                MatchEvent {
                    at: Duration::from_millis(50),
                    pair: Comparison::new(ProfileId(2), ProfileId(3)),
                    similarity: 0.8,
                },
            ],
            comparisons: 10,
            elapsed: Duration::from_millis(60),
            profiles: 4,
        };
        assert_eq!(report.matches_within(Duration::from_millis(10)), 1);
        assert_eq!(report.matches_within(Duration::from_millis(100)), 2);
    }
}
