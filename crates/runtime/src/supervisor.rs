//! Supervision and recovery for the threaded pipeline.
//!
//! The progressive guarantee is only useful if the pipeline survives the
//! failures a long-running stream will actually see. This module holds the
//! pieces every topology shares:
//!
//! * [`Supervisor`] — the run-wide fault ledger: the dead-letter queue
//!   (surfaced as `RuntimeReport::dead_letters`), the quarantine set of
//!   profiles proven to panic ingest, and the restart / load-shed
//!   counters. All of its methods take the run's observer so each fault
//!   also flows through `ObserverSet` into `pier-metrics`.
//! * [`IngestJournal`] — a bounded ring buffer of successfully ingested
//!   profile batches for one stage-A lane. When a shard worker dies, a
//!   fresh worker replays the journal to rebuild its blocking state;
//!   re-emitted comparisons are absorbed by the merger's CF dedup, so the
//!   recovered stream emits exactly the fault-free match set.
//! * [`DeadLetter`] — one quarantined profile, dropped duplicate, lost
//!   match, or quarantined pair.

use std::collections::{HashSet, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use pier_observe::{DeadLetterReason, Event, Observer, WorkerRole};
use pier_types::{Comparison, EntityProfile, ProfileId, TokenId};

/// One entry of the run's dead-letter queue.
#[derive(Debug, Clone, PartialEq)]
pub enum DeadLetter {
    /// Ingesting this profile panicked repeatably; the supervisor
    /// quarantined it and the stream continued without it.
    QuarantinedProfile {
        /// The quarantined profile id.
        profile: u32,
        /// The shard whose worker identified it (`None` for the single
        /// topology).
        shard: Option<u16>,
    },
    /// This profile id arrived twice; the repeat was dropped.
    DuplicateProfile {
        /// The duplicated profile id.
        profile: u32,
    },
    /// A confirmed match could not be delivered to the collector (the
    /// match channel was gone or stayed full past the send timeout).
    LostMatch {
        /// The confirmed-but-undelivered pair.
        pair: Comparison,
        /// The similarity the classifier reported for it.
        similarity: f64,
    },
    /// Evaluating this pair panicked repeatably; it was quarantined and
    /// counted as a non-match.
    QuarantinedPair {
        /// The quarantined pair.
        pair: Comparison,
    },
}

impl DeadLetter {
    /// The [`DeadLetterReason`] this entry is observed and counted under.
    pub fn reason(&self) -> DeadLetterReason {
        match self {
            DeadLetter::QuarantinedProfile { .. } => DeadLetterReason::PoisonedProfile,
            DeadLetter::DuplicateProfile { .. } => DeadLetterReason::DuplicateProfile,
            DeadLetter::LostMatch { .. } => DeadLetterReason::LostMatch,
            DeadLetter::QuarantinedPair { .. } => DeadLetterReason::PoisonedPair,
        }
    }
}

impl fmt::Display for DeadLetter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeadLetter::QuarantinedProfile {
                profile,
                shard: Some(shard),
            } => write!(f, "profile {profile} quarantined (panicked shard {shard})"),
            DeadLetter::QuarantinedProfile {
                profile,
                shard: None,
            } => write!(f, "profile {profile} quarantined (panicked stage A)"),
            DeadLetter::DuplicateProfile { profile } => {
                write!(f, "profile {profile} ingested twice; repeat dropped")
            }
            DeadLetter::LostMatch { pair, similarity } => write!(
                f,
                "match ({}, {}) @ {similarity:.3} lost: collector unreachable",
                pair.a.0, pair.b.0
            ),
            DeadLetter::QuarantinedPair { pair } => write!(
                f,
                "pair ({}, {}) quarantined (panicked matcher)",
                pair.a.0, pair.b.0
            ),
        }
    }
}

/// The run-wide fault ledger shared by every supervised stage.
///
/// Cheap when nothing fails: the hot paths only consult
/// [`Supervisor::is_quarantined`] (an uncontended read-lock on an empty
/// set) when a chaos plan is armed, and the other methods run once per
/// fault.
#[derive(Debug, Default)]
pub struct Supervisor {
    dead_letters: Mutex<Vec<DeadLetter>>,
    quarantined: Mutex<HashSet<u32>>,
    /// Lock-free mirror of `quarantined.len()`: the per-batch fast path
    /// asks "is anything quarantined at all?" without taking the lock.
    quarantined_count: AtomicU64,
    restarts: AtomicU64,
    shed: AtomicU64,
}

impl Supervisor {
    /// A fresh ledger with nothing quarantined.
    pub fn new() -> Supervisor {
        Supervisor::default()
    }

    /// Whether anything is quarantined at all — a relaxed atomic read, so
    /// fault-free hot paths can skip per-profile quarantine lookups.
    pub fn has_quarantined(&self) -> bool {
        self.quarantined_count.load(Ordering::Relaxed) > 0
    }

    /// Whether `profile` has been quarantined — supervised ingest paths
    /// skip such profiles on retry and replay.
    pub fn is_quarantined(&self, profile: u32) -> bool {
        self.quarantined.lock().contains(&profile)
    }

    /// Quarantines `profile` after its ingest panicked. Returns `true` the
    /// first time only: the quarantine set is global, so a poison profile
    /// fanned out to several shards (each panicking on its copy) still
    /// produces exactly one dead letter and one event.
    pub fn quarantine_profile(
        &self,
        profile: u32,
        shard: Option<u16>,
        observer: &Observer,
    ) -> bool {
        if !self.quarantined.lock().insert(profile) {
            return false;
        }
        self.quarantined_count.fetch_add(1, Ordering::Relaxed);
        self.push(DeadLetter::QuarantinedProfile { profile, shard }, observer);
        true
    }

    /// Records a dropped duplicate ingest of `profile`.
    pub fn duplicate_profile(&self, profile: u32, observer: &Observer) {
        self.push(DeadLetter::DuplicateProfile { profile }, observer);
    }

    /// Records a confirmed match that could not reach the collector.
    pub fn lost_match(&self, pair: Comparison, similarity: f64, observer: &Observer) {
        self.push(DeadLetter::LostMatch { pair, similarity }, observer);
    }

    /// Quarantines a pair whose evaluation panicked repeatably.
    pub fn quarantine_pair(&self, pair: Comparison, observer: &Observer) {
        self.push(DeadLetter::QuarantinedPair { pair }, observer);
    }

    fn push(&self, letter: DeadLetter, observer: &Observer) {
        let reason = letter.reason();
        let (a, b) = match &letter {
            DeadLetter::QuarantinedProfile { profile, .. }
            | DeadLetter::DuplicateProfile { profile } => {
                (ProfileId(*profile), ProfileId(*profile))
            }
            DeadLetter::LostMatch { pair, .. } | DeadLetter::QuarantinedPair { pair } => {
                (pair.a, pair.b)
            }
        };
        self.dead_letters.lock().push(letter);
        observer.emit(|| Event::DeadLettered { reason, a, b });
    }

    /// Records one supervised restart of a `role` worker on `lane`,
    /// measured from panic to resumed stream.
    pub fn worker_restarted(
        &self,
        role: WorkerRole,
        lane: u16,
        recovery_secs: f64,
        observer: &Observer,
    ) {
        self.restarts.fetch_add(1, Ordering::Relaxed);
        observer.emit(|| Event::WorkerRestarted {
            role,
            lane,
            recovery_secs,
        });
    }

    /// Records `count` comparisons dropped by load shedding.
    pub fn shed_comparisons(&self, count: usize, observer: &Observer) {
        if count == 0 {
            return;
        }
        self.shed.fetch_add(count as u64, Ordering::Relaxed);
        observer.emit(|| Event::ComparisonsShed { count });
    }

    /// Worker restarts so far.
    pub fn restarts(&self) -> u64 {
        self.restarts.load(Ordering::Relaxed)
    }

    /// Comparisons dropped by load shedding so far.
    pub fn comparisons_shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// A snapshot of the dead-letter queue in arrival order.
    pub fn dead_letters(&self) -> Vec<DeadLetter> {
        self.dead_letters.lock().clone()
    }
}

/// One journaled stage-A ingest: the skeleton profile, its token-id
/// subset, and its ghost floor — exactly the triple a `ShardWorker`
/// ingests, so replay re-runs the original call.
pub type JournalEntry = (EntityProfile, Vec<TokenId>, usize);

/// A bounded ring buffer of successfully ingested batches for one stage-A
/// lane. Entries are dense (interned ids, attribute-less skeletons), so
/// journaling costs one clone of each routed triple. When the buffer is
/// full the oldest entries are evicted and counted — a recovery after
/// eviction rebuilds only the journaled suffix, which keeps the worker
/// alive but may lose early comparisons (the eviction count makes that
/// auditable).
#[derive(Debug)]
pub struct IngestJournal {
    entries: VecDeque<JournalEntry>,
    capacity: usize,
    evicted: u64,
}

impl IngestJournal {
    /// An empty journal keeping at most `capacity` profiles.
    pub fn new(capacity: usize) -> IngestJournal {
        IngestJournal {
            entries: VecDeque::new(),
            capacity: capacity.max(1),
            evicted: 0,
        }
    }

    /// Records one successfully ingested profile triple.
    pub fn record(&mut self, entry: &JournalEntry) {
        while self.entries.len() >= self.capacity {
            self.entries.pop_front();
            self.evicted += 1;
        }
        self.entries.push_back(entry.clone());
    }

    /// Records every profile of a successfully ingested batch.
    pub fn record_batch(&mut self, batch: &[JournalEntry]) {
        for entry in batch {
            self.record(entry);
        }
    }

    /// The journaled entries, oldest first — feed them back through the
    /// fresh worker's ingest to rebuild its blocking state.
    pub fn entries(&self) -> impl Iterator<Item = &JournalEntry> {
        self.entries.iter()
    }

    /// Profiles currently journaled.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is journaled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Profiles evicted by the capacity bound so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pier_types::SourceId;

    fn entry(id: u32) -> JournalEntry {
        (
            EntityProfile::new(ProfileId(id), SourceId(0)),
            vec![TokenId(id)],
            1,
        )
    }

    #[test]
    fn quarantine_is_exactly_once() {
        let sup = Supervisor::new();
        let obs = Observer::disabled();
        assert!(!sup.is_quarantined(7));
        assert!(sup.quarantine_profile(7, Some(2), &obs));
        // Second quarantine of the same profile (another shard panicking
        // on its copy) records nothing new.
        assert!(!sup.quarantine_profile(7, Some(3), &obs));
        assert!(sup.is_quarantined(7));
        assert_eq!(
            sup.dead_letters(),
            vec![DeadLetter::QuarantinedProfile {
                profile: 7,
                shard: Some(2)
            }]
        );
    }

    #[test]
    fn ledger_counts_restarts_and_shed() {
        let sup = Supervisor::new();
        let obs = Observer::disabled();
        sup.worker_restarted(WorkerRole::Shard, 1, 0.01, &obs);
        sup.worker_restarted(WorkerRole::Match, 0, 0.002, &obs);
        sup.shed_comparisons(0, &obs);
        sup.shed_comparisons(25, &obs);
        assert_eq!(sup.restarts(), 2);
        assert_eq!(sup.comparisons_shed(), 25);
    }

    #[test]
    fn dead_letter_kinds_round_trip_reason_and_display() {
        let pair = Comparison::new(ProfileId(1), ProfileId(2));
        let letters = [
            DeadLetter::QuarantinedProfile {
                profile: 9,
                shard: None,
            },
            DeadLetter::DuplicateProfile { profile: 9 },
            DeadLetter::LostMatch {
                pair,
                similarity: 0.9,
            },
            DeadLetter::QuarantinedPair { pair },
        ];
        let reasons: Vec<DeadLetterReason> = letters.iter().map(|l| l.reason()).collect();
        assert_eq!(reasons, DeadLetterReason::ALL.to_vec());
        for letter in &letters {
            assert!(!letter.to_string().is_empty());
        }
    }

    #[test]
    fn journal_evicts_oldest_beyond_capacity() {
        let mut journal = IngestJournal::new(3);
        assert!(journal.is_empty());
        for id in 0..5 {
            journal.record(&entry(id));
        }
        assert_eq!(journal.len(), 3);
        assert_eq!(journal.evicted(), 2);
        let ids: Vec<u32> = journal.entries().map(|(p, _, _)| p.id.0).collect();
        assert_eq!(ids, vec![2, 3, 4]);
    }

    #[test]
    fn journal_batch_records_in_order() {
        let mut journal = IngestJournal::new(16);
        journal.record_batch(&[entry(1), entry(2)]);
        journal.record_batch(&[entry(3)]);
        let ids: Vec<u32> = journal.entries().map(|(p, _, _)| p.id.0).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        assert_eq!(journal.evicted(), 0);
    }
}
