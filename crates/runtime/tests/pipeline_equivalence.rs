//! The unification contract of the composable [`Pipeline`]: every cell of
//! the `{single, 4-shard} × {1, 4 match workers} × {observed, noop}`
//! matrix reports the identical match set, pair completeness, and
//! executed-comparison count — topology, stage-B parallelism, and
//! observation may only change wall-clock behaviour — and the deprecated
//! pre-`Pipeline` entry points pin bit-identical outputs to their
//! `Pipeline` replacements.
//!
//! Determinism setup (same as `tests/sharded_equivalence.rs`): CBS
//! weighting, which is additive over hash-partitioned blocks, and purging
//! disabled, so a fully drained run emits exactly one deterministic
//! comparison set regardless of arrival timing.

use std::sync::Arc;
use std::time::Duration;

use pier_blocking::PurgePolicy;
use pier_core::{PierConfig, Strategy};
use pier_datagen::{generate_bibliographic, BibliographicConfig};
use pier_matching::{JaccardMatcher, MatchFunction};
use pier_observe::{Observer, StatsObserver};
use pier_runtime::{Pipeline, RuntimeConfig, RuntimeReport};
use pier_shard::ShardedConfig;
use pier_types::{Comparison, Dataset};

fn corpus() -> Dataset {
    generate_bibliographic(&BibliographicConfig {
        seed: 7,
        source0_size: 120,
        source1_size: 100,
        matches: 80,
    })
}

fn pier_config() -> PierConfig {
    // The default scheme is CBS — the one scheme that is additive over
    // hash-partitioned blocks and therefore shard-exact (DESIGN.md §8).
    PierConfig::default()
}

fn runtime_config(match_workers: usize) -> RuntimeConfig {
    RuntimeConfig {
        interarrival: Duration::from_millis(1),
        deadline: Duration::from_secs(60),
        match_workers,
        purge_policy: PurgePolicy::disabled(),
        ..RuntimeConfig::default()
    }
}

fn sharded_config(shards: u16) -> ShardedConfig {
    ShardedConfig {
        shards,
        strategy: Strategy::Pcs,
        pier: pier_config(),
        purge_policy: PurgePolicy::disabled(),
    }
}

/// The externally visible outcome of a run, in comparable form.
#[derive(Debug, PartialEq)]
struct Outcome {
    pairs: Vec<Comparison>,
    comparisons: u64,
    pc: f64,
}

fn outcome(dataset: &Dataset, report: &RuntimeReport) -> Outcome {
    let mut pairs: Vec<Comparison> = report.matches.iter().map(|m| m.pair).collect();
    pairs.sort_unstable();
    pairs.dedup();
    Outcome {
        pairs,
        comparisons: report.comparisons,
        pc: report.progress_trajectory(&dataset.ground_truth).pc(),
    }
}

/// One matrix cell: builds the pipeline for `(shards, workers, observed)`
/// and runs it to completion. Returns the observer so observed cells can
/// also check the fan-out saw every event.
fn run_cell(
    dataset: &Dataset,
    shards: Option<u16>,
    workers: usize,
    observed: bool,
) -> (RuntimeReport, Option<Arc<StatsObserver>>) {
    let increments: Vec<_> = dataset
        .clone()
        .into_increments(8)
        .unwrap()
        .into_iter()
        .map(|i| i.profiles)
        .collect();
    let mut builder = Pipeline::builder(dataset.kind).config(runtime_config(workers));
    builder = match shards {
        Some(n) => builder.sharded(sharded_config(n)),
        None => builder.emitter(Strategy::Pcs.build(pier_config())),
    };
    let stats = observed.then(|| Arc::new(StatsObserver::new()));
    if let Some(stats) = &stats {
        builder = builder.observe("stats", stats.clone());
    }
    let matcher: Arc<dyn MatchFunction> = Arc::new(JaccardMatcher::default());
    let report = builder.build().unwrap().run(increments, matcher, |_| {});
    (report, stats)
}

/// The full 8-cell matrix agrees on match set, PC, and comparison count.
#[test]
fn topology_workers_and_observation_matrix_is_equivalent() {
    let dataset = corpus();
    let mut reference: Option<(String, Outcome)> = None;
    for shards in [None, Some(4)] {
        for workers in [1usize, 4] {
            for observed in [false, true] {
                let label = format!(
                    "{}x{workers}{}",
                    shards.map_or("single".into(), |n| format!("sharded{n}")),
                    if observed { "+observed" } else { "" }
                );
                let (report, stats) = run_cell(&dataset, shards, workers, observed);
                let got = outcome(&dataset, &report);
                assert!(
                    got.pairs.len() > 10,
                    "{label}: vacuous run ({} matches)",
                    got.pairs.len()
                );
                if let Some(stats) = stats {
                    // The composed observer saw exactly the confirmed set.
                    assert_eq!(
                        stats.snapshot().matches_confirmed as usize,
                        got.pairs.len(),
                        "{label}: observer missed matches"
                    );
                }
                match &reference {
                    None => reference = Some((label, got)),
                    Some((ref_label, want)) => {
                        assert_eq!(&got, want, "{label} differs from {ref_label}");
                    }
                }
            }
        }
    }
}

/// The deprecated wrappers pin bit-identical outputs to their `Pipeline`
/// replacements — the one-release migration guarantee.
#[test]
#[allow(deprecated)]
fn deprecated_entry_points_pin_pipeline_outputs() {
    use pier_runtime::{
        run_streaming, run_streaming_observed, run_streaming_sharded,
        run_streaming_sharded_observed,
    };
    let dataset = corpus();
    let increments = || -> Vec<_> {
        dataset
            .clone()
            .into_increments(8)
            .unwrap()
            .into_iter()
            .map(|i| i.profiles)
            .collect()
    };
    let matcher: Arc<dyn MatchFunction> = Arc::new(JaccardMatcher::default());

    let legacy = run_streaming(
        dataset.kind,
        increments(),
        Strategy::Pcs.build(pier_config()),
        Arc::clone(&matcher),
        runtime_config(1),
        |_| {},
    );
    let (pipeline, _) = run_cell(&dataset, None, 1, false);
    assert_eq!(outcome(&dataset, &legacy), outcome(&dataset, &pipeline));

    let legacy_sharded = run_streaming_sharded(
        dataset.kind,
        increments(),
        sharded_config(4),
        Arc::clone(&matcher),
        runtime_config(4),
        |_| {},
    );
    let (pipeline_sharded, _) = run_cell(&dataset, Some(4), 4, false);
    assert_eq!(
        outcome(&dataset, &legacy_sharded),
        outcome(&dataset, &pipeline_sharded)
    );

    // The `_observed` variants delegate through the same ObserverSet path.
    let stats = Arc::new(StatsObserver::new());
    let observed = run_streaming_observed(
        dataset.kind,
        increments(),
        Strategy::Pcs.build(pier_config()),
        Arc::clone(&matcher),
        runtime_config(1),
        Observer::new(stats.clone()),
        |_| {},
    );
    assert_eq!(outcome(&dataset, &observed), outcome(&dataset, &pipeline));
    assert_eq!(
        stats.snapshot().matches_confirmed as usize,
        observed.matches.len()
    );

    let stats_sharded = Arc::new(StatsObserver::new());
    let observed_sharded = run_streaming_sharded_observed(
        dataset.kind,
        increments(),
        sharded_config(4),
        matcher,
        runtime_config(4),
        Observer::new(stats_sharded.clone()),
        |_| {},
    );
    assert_eq!(
        outcome(&dataset, &observed_sharded),
        outcome(&dataset, &pipeline_sharded)
    );
    assert!(!stats_sharded.snapshot().shards.is_empty());
}
