//! Determinism contract of the parallel stage-B executor: a pooled run
//! (`match_workers = 4`) must report the identical match set, pair
//! completeness, and executed-comparison count as the sequential executor
//! (`match_workers = 1`) on the same seeded stream. The pool fans matcher
//! evaluations out, but every externally visible effect is re-sequenced on
//! the coordinator, so parallelism may only change wall-clock throughput.

use std::sync::Arc;
use std::time::Duration;

use pier_blocking::PurgePolicy;
use pier_core::{Ipes, PierConfig};
use pier_datagen::{generate_bibliographic, BibliographicConfig};
use pier_matching::{EditDistanceMatcher, MatchFunction};
use pier_runtime::{Pipeline, RuntimeConfig, RuntimeReport};
use pier_types::{Comparison, Dataset};

fn seeded_dataset() -> Dataset {
    generate_bibliographic(&BibliographicConfig {
        seed: 7,
        source0_size: 160,
        source1_size: 140,
        matches: 120,
    })
}

fn run_with_workers(dataset: &Dataset, workers: usize) -> (RuntimeReport, Vec<Comparison>) {
    let increments: Vec<_> = dataset
        .into_increments(8)
        .expect("dataset splits into 8 increments")
        .into_iter()
        .map(|inc| inc.profiles)
        .collect();
    let emitter = Box::new(Ipes::new(PierConfig::default()));
    let matcher: Arc<dyn MatchFunction> = Arc::new(EditDistanceMatcher::default());
    let config = RuntimeConfig {
        interarrival: Duration::from_millis(2),
        deadline: Duration::from_secs(120),
        match_workers: workers,
        // Purging makes the emitted candidate set depend on arrival timing;
        // disabling it pins one deterministic set for both executors.
        purge_policy: PurgePolicy::disabled(),
        ..RuntimeConfig::default()
    };
    let report = Pipeline::builder(dataset.kind)
        .config(config)
        .emitter(emitter)
        .build()
        .unwrap()
        .run(increments, matcher, |_| {});
    let mut pairs: Vec<Comparison> = report.matches.iter().map(|m| m.pair).collect();
    pairs.sort_unstable();
    pairs.dedup();
    (report, pairs)
}

#[test]
fn four_workers_report_the_sequential_results_exactly() {
    let dataset = seeded_dataset();
    let (seq, seq_pairs) = run_with_workers(&dataset, 1);
    let (par, par_pairs) = run_with_workers(&dataset, 4);

    // Identical match set.
    assert!(!seq_pairs.is_empty(), "the seeded stream produces matches");
    assert_eq!(seq_pairs, par_pairs);

    // Identical pair completeness against the generator's ground truth.
    let pc = |report: &RuntimeReport| report.progress_trajectory(&dataset.ground_truth).pc();
    assert_eq!(pc(&seq), pc(&par));

    // Identical executed-comparison count: both runs fully drain the same
    // CF-deduplicated candidate set.
    assert_eq!(seq.comparisons, par.comparisons);

    // The report exposes the executor configuration and its per-worker
    // split. A sequential run has the single aggregate entry; a pooled
    // run's per-worker counts cover at least every coordinator-counted
    // comparison (workers always finish their chunk, the budget cutoff
    // happens at the coordinator).
    assert_eq!(seq.match_workers, 1);
    assert_eq!(seq.worker_comparisons, vec![seq.comparisons]);
    assert_eq!(par.match_workers, 4);
    assert_eq!(par.worker_comparisons.len(), 4);
    let per_worker_total: u64 = par.worker_comparisons.iter().sum();
    assert!(per_worker_total >= par.comparisons);
    // The fan-out actually spread work across workers.
    let busy_workers = par.worker_comparisons.iter().filter(|&&c| c > 0).count();
    assert!(busy_workers >= 2, "got {:?}", par.worker_comparisons);
}
