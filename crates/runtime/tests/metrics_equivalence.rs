//! End-to-end telemetry equivalence: the totals scraped over HTTP from a
//! live [`MetricsServer`] must equal the final [`RuntimeReport`] exactly —
//! comparisons, matches, profiles, and the per-worker breakdown — for both
//! the single-blocker streaming driver and the sharded driver.

use std::collections::HashMap;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use pier_core::{Ipes, PierConfig};
use pier_datagen::{generate_bibliographic, BibliographicConfig};
use pier_matching::{JaccardMatcher, MatchFunction};
use pier_metrics::{MetricsServer, Telemetry};
use pier_runtime::{Pipeline, RuntimeConfig, RuntimeReport};
use pier_shard::ShardedConfig;
use pier_types::{Dataset, EntityProfile};

fn dataset() -> Dataset {
    generate_bibliographic(&BibliographicConfig {
        seed: 42,
        source0_size: 200,
        source1_size: 150,
        matches: 100,
    })
}

fn increments(dataset: &Dataset) -> Vec<Vec<EntityProfile>> {
    dataset
        .into_increments(8)
        .unwrap()
        .into_iter()
        .map(|i| i.profiles)
        .collect()
}

fn runtime_config(telemetry: Telemetry, match_workers: usize) -> RuntimeConfig {
    RuntimeConfig {
        interarrival: Duration::from_millis(2),
        deadline: Duration::from_secs(30),
        match_workers,
        telemetry: Some(telemetry),
        ..RuntimeConfig::default()
    }
}

/// One HTTP scrape, parsed into `name{labels} -> value` samples.
fn scrape(addr: SocketAddr) -> HashMap<String, f64> {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "GET /metrics HTTP/1.1\r\nHost: pier\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response.split_once("\r\n\r\n").unwrap();
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    let mut samples = HashMap::new();
    for line in body.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let (key, value) = line.rsplit_once(' ').unwrap();
        samples.insert(key.to_string(), value.parse::<f64>().unwrap());
    }
    samples
}

/// The acceptance contract: scraped counters == report totals, exactly.
fn assert_scrape_equals_report(samples: &HashMap<String, f64>, report: &RuntimeReport) {
    assert_eq!(samples["pier_comparisons_total"] as u64, report.comparisons);
    assert_eq!(
        samples["pier_matches_confirmed_total"] as u64,
        report.matches.len() as u64
    );
    assert_eq!(
        samples["pier_profiles_total"] as u64,
        report.profiles as u64
    );
    assert_eq!(report.worker_comparisons.len(), report.match_workers);
    for (worker, &want) in report.worker_comparisons.iter().enumerate() {
        let key = format!("pier_worker_comparisons_total{{worker=\"{worker}\"}}");
        assert_eq!(samples[&key] as u64, want, "{key}");
    }
    // publish_final landed the same totals as run gauges.
    assert_eq!(
        samples["pier_run_matches"] as u64,
        report.matches.len() as u64
    );
    assert_eq!(samples["pier_run_profiles"] as u64, report.profiles as u64);
    assert!(samples["pier_run_elapsed_seconds"] > 0.0);
}

#[test]
fn streaming_scrape_equals_report() {
    let dataset = dataset();
    let telemetry = Telemetry::new().with_ground_truth(dataset.ground_truth.clone());
    let mut server = MetricsServer::serve("127.0.0.1:0", Arc::clone(telemetry.registry())).unwrap();
    let addr = server.local_addr();

    // A scrape before the run answers cleanly (the driver registers the
    // schema when it starts, so the body may still be empty).
    scrape(addr);

    let matcher: Arc<dyn MatchFunction> = Arc::new(JaccardMatcher::default());
    let report = Pipeline::builder(dataset.kind)
        .config(runtime_config(telemetry, 2))
        .emitter(Box::new(Ipes::new(PierConfig::default())))
        .build()
        .unwrap()
        .run(increments(&dataset), matcher, |_| {});
    assert!(report.matches.len() > 10, "run found matches");

    let samples = scrape(addr);
    assert_scrape_equals_report(&samples, &report);
    // Pooled run: worker counters can over-count the coordinator's budget-
    // capped total, never under-count.
    let worker_sum: u64 = report.worker_comparisons.iter().sum();
    assert!(worker_sum >= report.comparisons);
    // Ground-truth recall was estimated and is a valid fraction.
    let recall = samples["pier_recall_estimate"];
    assert!(recall > 0.0 && recall <= 1.0, "recall {recall}");
    // Queue gauges drained; stall accounting never goes negative.
    assert_eq!(samples[r#"pier_queue_depth{queue="matches"}"#] as i64, 0);
    assert!(samples[r#"pier_queue_sends_total{queue="increments"}"#] >= 8.0);
    // The counter increments after the response socket closes, so the
    // last scrape may not be visible yet — at least the first one is.
    assert!(server.requests_served() >= 1);
    server.shutdown();
}

#[test]
fn sharded_scrape_equals_report() {
    let dataset = dataset();
    let telemetry = Telemetry::new().with_expected_matches(100);
    let mut server = MetricsServer::serve("127.0.0.1:0", Arc::clone(telemetry.registry())).unwrap();
    let addr = server.local_addr();

    let matcher: Arc<dyn MatchFunction> = Arc::new(JaccardMatcher::default());
    let report = Pipeline::builder(dataset.kind)
        .config(runtime_config(telemetry, 1))
        .sharded(ShardedConfig::default())
        .build()
        .unwrap()
        .run(increments(&dataset), matcher, |_| {});
    assert!(report.matches.len() > 10, "run found matches");

    let samples = scrape(addr);
    assert_scrape_equals_report(&samples, &report);
    // Sequential mode: the single worker entry is the comparison total.
    assert_eq!(report.worker_comparisons, vec![report.comparisons]);
    // Per-shard emission counters sum to the global emitted total.
    let shards = ShardedConfig::default().shards;
    let shard_emitted: f64 = (0..shards)
        .map(|s| {
            samples
                .get(&format!(
                    "pier_shard_comparisons_emitted_total{{shard=\"{s}\"}}"
                ))
                .copied()
                .unwrap_or(0.0)
        })
        .sum();
    assert_eq!(
        shard_emitted as u64,
        samples["pier_comparisons_emitted_total"] as u64
    );
    server.shutdown();
}
