//! The fault-tolerance contract: every cell of the
//! `{single, 4-shard} × {worker-panic, merger-delay, poison-profile} ×
//! {1, 4 match workers}` chaos matrix recovers and reports the *identical*
//! final match set, pair completeness, and executed-comparison count as
//! the fault-free run of the same topology — supervision may only change
//! wall-clock behaviour, never results.
//!
//! Determinism setup (same as `tests/pipeline_equivalence.rs`): CBS
//! weighting (additive over hash-partitioned blocks) and purging disabled,
//! so a fully drained run emits exactly one deterministic comparison set.
//! Recovery keeps that exact: shard workers are rebuilt by replaying the
//! per-shard ingest journal (re-emitted comparisons are absorbed by the
//! merger's CF dedup), a panicked match-worker chunk is re-evaluated on
//! the coordinator and credited to the dead worker, and an injected poison
//! profile carries tokens shared with nothing real, so quarantining it
//! leaves every real block and ghost floor untouched.

use std::sync::Arc;
use std::time::Duration;

use pier_blocking::PurgePolicy;
use pier_chaos::{Fault, FaultKind, FaultPlan, FaultPoint, POISON_ID_BASE};
use pier_core::{PierConfig, Strategy};
use pier_datagen::{generate_bibliographic, BibliographicConfig};
use pier_matching::{JaccardMatcher, MatchFunction};
use pier_runtime::{DeadLetter, Pipeline, RuntimeConfig, RuntimeReport, ShedPolicy};
use pier_shard::ShardedConfig;
use pier_types::{Comparison, Dataset, EntityProfile};

fn corpus() -> Dataset {
    generate_bibliographic(&BibliographicConfig {
        seed: 7,
        source0_size: 120,
        source1_size: 100,
        matches: 80,
    })
}

fn runtime_config(match_workers: usize, fault_plan: Option<FaultPlan>) -> RuntimeConfig {
    RuntimeConfig {
        interarrival: Duration::from_millis(1),
        deadline: Duration::from_secs(60),
        match_workers,
        purge_policy: PurgePolicy::disabled(),
        fault_plan,
        ..RuntimeConfig::default()
    }
}

fn sharded_config(shards: u16) -> ShardedConfig {
    ShardedConfig {
        shards,
        strategy: Strategy::Pcs,
        pier: PierConfig::default(),
        purge_policy: PurgePolicy::disabled(),
    }
}

fn increments(dataset: &Dataset) -> Vec<Vec<EntityProfile>> {
    dataset
        .clone()
        .into_increments(8)
        .unwrap()
        .into_iter()
        .map(|i| i.profiles)
        .collect()
}

fn run_cell(
    dataset: &Dataset,
    increments: Vec<Vec<EntityProfile>>,
    shards: Option<u16>,
    workers: usize,
    fault_plan: Option<FaultPlan>,
) -> RuntimeReport {
    let mut builder = Pipeline::builder(dataset.kind).config(runtime_config(workers, fault_plan));
    builder = match shards {
        Some(n) => builder.sharded(sharded_config(n)),
        None => builder.emitter(Strategy::Pcs.build(PierConfig::default())),
    };
    let matcher: Arc<dyn MatchFunction> = Arc::new(JaccardMatcher::default());
    builder.build().unwrap().run(increments, matcher, |_| {})
}

/// The externally visible outcome of a run, in comparable form.
#[derive(Debug, PartialEq)]
struct Outcome {
    pairs: Vec<Comparison>,
    comparisons: u64,
    pc: f64,
}

fn outcome(dataset: &Dataset, report: &RuntimeReport) -> Outcome {
    let mut pairs: Vec<Comparison> = report.matches.iter().map(|m| m.pair).collect();
    pairs.sort_unstable();
    pairs.dedup();
    Outcome {
        pairs,
        comparisons: report.comparisons,
        pc: report.progress_trajectory(&dataset.ground_truth).pc(),
    }
}

#[derive(Clone, Copy, Debug)]
enum Scenario {
    WorkerPanic,
    MergerDelay,
    PoisonProfile,
}

impl Scenario {
    const ALL: [Scenario; 3] = [
        Scenario::WorkerPanic,
        Scenario::MergerDelay,
        Scenario::PoisonProfile,
    ];

    /// The fault plan for one matrix cell. `worker-panic` targets the
    /// topology's supervised worker kind: shard workers when sharded, the
    /// match pool otherwise (with one match worker there is no pool thread
    /// to kill — the plan stays armed and must change nothing).
    fn plan(self, sharded: bool) -> FaultPlan {
        let fault = match self {
            Scenario::WorkerPanic if sharded => Fault {
                point: FaultPoint::ShardWorker,
                lane: None,
                at_event: 2,
                kind: FaultKind::Panic,
            },
            Scenario::WorkerPanic => Fault {
                point: FaultPoint::MatchWorker,
                lane: None,
                at_event: 5,
                kind: FaultKind::Panic,
            },
            Scenario::MergerDelay => Fault {
                point: FaultPoint::Merger,
                lane: None,
                at_event: 3,
                kind: FaultKind::Delay(25),
            },
            Scenario::PoisonProfile => Fault {
                point: FaultPoint::StageAIngest,
                lane: None,
                at_event: 1,
                kind: FaultKind::MalformedProfile,
            },
        };
        FaultPlan::empty(7).with(fault)
    }
}

fn quarantined(report: &RuntimeReport) -> Vec<u32> {
    report
        .dead_letters
        .iter()
        .filter_map(|d| match d {
            DeadLetter::QuarantinedProfile { profile, .. } => Some(*profile),
            _ => None,
        })
        .collect()
}

/// The headline matrix: every faulted cell equals its fault-free baseline.
#[test]
fn chaos_matrix_recovers_to_fault_free_outcomes() {
    let dataset = corpus();
    for shards in [None, Some(4)] {
        for workers in [1usize, 4] {
            let baseline_report = run_cell(&dataset, increments(&dataset), shards, workers, None);
            let baseline = outcome(&dataset, &baseline_report);
            assert!(
                baseline.pairs.len() > 10,
                "vacuous baseline ({} matches)",
                baseline.pairs.len()
            );
            assert!(baseline_report.dead_letters.is_empty());
            assert_eq!(baseline_report.worker_restarts, 0);
            assert_eq!(baseline_report.comparisons_shed, 0);

            for scenario in Scenario::ALL {
                let label = format!(
                    "{}x{workers}/{scenario:?}",
                    shards.map_or("single".into(), |n| format!("sharded{n}"))
                );
                let plan = scenario.plan(shards.is_some());
                let report = run_cell(&dataset, increments(&dataset), shards, workers, Some(plan));
                let got = outcome(&dataset, &report);
                assert_eq!(got, baseline, "{label} diverged from fault-free run");

                // The fault must actually have been survived, not skipped.
                match scenario {
                    Scenario::WorkerPanic => {
                        if shards.is_some() || workers > 1 {
                            assert!(
                                report.worker_restarts >= 1,
                                "{label}: no worker was restarted"
                            );
                        }
                    }
                    Scenario::MergerDelay => {
                        // A delay is invisible in the report; equality above
                        // is the whole contract.
                    }
                    Scenario::PoisonProfile => {
                        let poisoned = quarantined(&report);
                        assert_eq!(
                            poisoned.len(),
                            1,
                            "{label}: poison profile quarantined {} times",
                            poisoned.len()
                        );
                        assert!(
                            poisoned[0] >= POISON_ID_BASE,
                            "{label}: quarantined a real profile ({})",
                            poisoned[0]
                        );
                    }
                }
            }
        }
    }
}

/// A duplicate profile id and a poison (ingest-panicking) profile each
/// land in the dead-letter queue exactly once, in both topologies, and
/// neither kills the run.
#[test]
fn duplicates_and_poison_dead_letter_exactly_once() {
    let dataset = corpus();
    for shards in [None, Some(4)] {
        let label = shards.map_or("single".to_string(), |n| format!("sharded{n}"));
        let mut increments = increments(&dataset);
        // Re-send an early profile in a later increment: same id, rejected
        // by the store/blocker as PierError::DuplicateProfile.
        let dup = increments[0][0].clone();
        let dup_id = dup.id.0;
        increments[4].push(dup);
        let plan = Scenario::PoisonProfile.plan(shards.is_some());
        let report = run_cell(&dataset, increments, shards, 2, Some(plan));

        let duplicates: Vec<u32> = report
            .dead_letters
            .iter()
            .filter_map(|d| match d {
                DeadLetter::DuplicateProfile { profile } => Some(*profile),
                _ => None,
            })
            .collect();
        assert_eq!(duplicates, vec![dup_id], "{label}: duplicate dead letters");
        assert_eq!(
            quarantined(&report).len(),
            1,
            "{label}: poison dead letters"
        );
        // The duplicate is also reported as a (non-fatal) ingest error.
        assert!(
            report
                .ingest_errors
                .iter()
                .any(|e| e.contains("ingested twice")),
            "{label}: duplicate missing from ingest_errors: {:?}",
            report.ingest_errors
        );
        // And the run itself still produced the full match set.
        assert!(outcome(&dataset, &report).pairs.len() > 10, "{label}");
    }
}

/// Load shedding under a saturated pull stream drops exactly the
/// below-threshold comparisons, counts them, and keeps everything else:
/// executed + shed equals the unshedded comparison count.
#[test]
fn load_shedding_drops_only_below_threshold_comparisons() {
    let dataset = corpus();
    let baseline = run_cell(&dataset, increments(&dataset), None, 1, None);

    let config = RuntimeConfig {
        shed: Some(ShedPolicy {
            min_weight: 2.0,
            // Every full pull counts as overload and the pull size is
            // capped well below the backlog, so shedding engages
            // deterministically in this saturated drain.
            trigger_full_pulls: 1,
            max_pull: 64,
        }),
        ..runtime_config(1, None)
    };
    let matcher: Arc<dyn MatchFunction> = Arc::new(JaccardMatcher::default());
    let report = Pipeline::builder(dataset.kind)
        .config(config)
        .emitter(Strategy::Pcs.build(PierConfig::default()))
        .build()
        .unwrap()
        .run(increments(&dataset), matcher, |_| {});

    assert!(report.comparisons_shed > 0, "shedding never engaged");
    assert!(report.comparisons < baseline.comparisons);
    assert_eq!(
        report.comparisons + report.comparisons_shed,
        baseline.comparisons,
        "shedding must only drop, never duplicate or invent comparisons"
    );
}
