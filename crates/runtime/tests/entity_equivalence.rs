//! The pier-entity correctness anchor: for both drivers and any stage-B
//! worker count, the incrementally maintained [`EntityIndex`] must equal
//! the *batch* transitive closure of the final report's match set — same
//! clusters, same membership — and a live HTTP scrape taken mid-run must
//! be generation-consistent with an applied-match count that never
//! exceeds the final report's.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pier_core::{Ipes, PierConfig};
use pier_datagen::{generate_bibliographic, BibliographicConfig};
use pier_entity::{EntityIndex, EntityServer};
use pier_matching::{JaccardMatcher, MatchFunction};
use pier_runtime::{MatchEvent, Pipeline, RuntimeConfig, RuntimeReport};
use pier_shard::ShardedConfig;
use pier_types::{Dataset, EntityProfile, ProfileId};

fn dataset() -> Dataset {
    generate_bibliographic(&BibliographicConfig {
        seed: 42,
        source0_size: 200,
        source1_size: 150,
        matches: 100,
    })
}

fn increments(dataset: &Dataset) -> Vec<Vec<EntityProfile>> {
    dataset
        .into_increments(8)
        .unwrap()
        .into_iter()
        .map(|i| i.profiles)
        .collect()
}

fn runtime_config(index: &Arc<EntityIndex>, match_workers: usize) -> RuntimeConfig {
    RuntimeConfig {
        interarrival: Duration::from_millis(2),
        deadline: Duration::from_secs(30),
        match_workers,
        entities: Some(Arc::clone(index)),
        ..RuntimeConfig::default()
    }
}

/// The oracle: BFS transitive closure of the report's match pairs, in the
/// same canonical shape as [`EntityIndex::partition`].
fn transitive_closure(matches: &[MatchEvent]) -> Vec<Vec<ProfileId>> {
    let mut adjacency: HashMap<ProfileId, Vec<ProfileId>> = HashMap::new();
    for m in matches {
        adjacency.entry(m.pair.a).or_default().push(m.pair.b);
        adjacency.entry(m.pair.b).or_default().push(m.pair.a);
    }
    let mut seen: HashSet<ProfileId> = HashSet::new();
    let mut components = Vec::new();
    let mut nodes: Vec<ProfileId> = adjacency.keys().copied().collect();
    nodes.sort_unstable();
    for start in nodes {
        if !seen.insert(start) {
            continue;
        }
        let mut component = vec![start];
        let mut queue = VecDeque::from([start]);
        while let Some(node) = queue.pop_front() {
            for &next in &adjacency[&node] {
                if seen.insert(next) {
                    component.push(next);
                    queue.push_back(next);
                }
            }
        }
        component.sort_unstable();
        components.push(component);
    }
    components.sort_by(|a, b| b.len().cmp(&a.len()).then(a[0].cmp(&b[0])));
    components
}

/// One HTTP GET against the entity server; returns (head, body).
fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: pier\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response.split_once("\r\n\r\n").unwrap();
    (head.to_string(), body.to_string())
}

/// Extracts a `"key":<u64>` field from the server's flat JSON.
fn json_u64(body: &str, key: &str) -> u64 {
    let marker = format!("\"{key}\":");
    let at = body.find(&marker).unwrap_or_else(|| {
        panic!("field {key} in {body}");
    });
    body[at + marker.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap()
}

/// Polls `/clusters` + `/healthz` while the run is live; returns every
/// `(generation, matches_applied)` pair observed, in scrape order.
fn spawn_scraper(
    addr: SocketAddr,
    done: Arc<AtomicBool>,
) -> std::thread::JoinHandle<Vec<(u64, u64)>> {
    std::thread::spawn(move || {
        let mut views = Vec::new();
        while !done.load(Ordering::Relaxed) {
            let (head, body) = http_get(addr, "/clusters");
            assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
            let generation = json_u64(&body, "generation");
            let applied = json_u64(&body, "matches_applied");
            // Within one response the counters are lock-consistent.
            assert_eq!(generation, applied, "torn /clusters view: {body}");
            let profiles = json_u64(&body, "profiles");
            let clusters = json_u64(&body, "clusters");
            let merges = json_u64(&body, "merges");
            assert_eq!(profiles, clusters + merges, "torn histogram: {body}");
            views.push((generation, applied));
            let (head, health) = http_get(addr, "/healthz");
            assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
            views.push((
                json_u64(&health, "generation"),
                json_u64(&health, "matches_applied"),
            ));
            std::thread::sleep(Duration::from_millis(5));
        }
        views
    })
}

/// Shared assertion block: index == closure, scrapes consistent.
fn assert_equivalence(
    index: &EntityIndex,
    report: &RuntimeReport,
    scrapes: &[(u64, u64)],
    label: &str,
) {
    assert!(report.matches.len() > 10, "{label}: run found matches");
    // The index partition is exactly the batch transitive closure.
    assert_eq!(
        index.partition(),
        transitive_closure(&report.matches),
        "{label}: partition != closure"
    );
    // Every confirmed match was applied, none twice.
    let stats = index.stats();
    assert_eq!(
        stats.matches_applied,
        report.matches.len() as u64,
        "{label}: applied != confirmed"
    );
    // The report summary is the index's summary.
    let summary = report.entity_summary.as_ref().expect("entities configured");
    assert_eq!(summary.clusters, stats.clusters, "{label}");
    assert_eq!(summary.matched_profiles, stats.profiles, "{label}");
    assert_eq!(
        summary.singletons,
        report.profiles - stats.profiles,
        "{label}"
    );
    // Mid-run scrapes: generation monotone across scrape order, and the
    // applied count never exceeds what the run finally confirmed.
    assert!(!scrapes.is_empty(), "{label}: scraper got no views");
    for window in scrapes.windows(2) {
        assert!(
            window[1].0 >= window[0].0,
            "{label}: generation went backwards across scrapes"
        );
    }
    for &(_, applied) in scrapes {
        assert!(
            applied <= report.matches.len() as u64,
            "{label}: scrape saw {applied} applied > final {}",
            report.matches.len()
        );
    }
}

fn run_streaming_case(match_workers: usize) {
    let dataset = dataset();
    let index = EntityIndex::shared();
    let mut server = EntityServer::serve("127.0.0.1:0", Arc::clone(&index)).unwrap();
    let done = Arc::new(AtomicBool::new(false));
    let scraper = spawn_scraper(server.local_addr(), Arc::clone(&done));

    let matcher: Arc<dyn MatchFunction> = Arc::new(JaccardMatcher::default());
    let report = Pipeline::builder(dataset.kind)
        .config(runtime_config(&index, match_workers))
        .emitter(Box::new(Ipes::new(PierConfig::default())))
        .build()
        .unwrap()
        .run(increments(&dataset), matcher, |_| {});
    done.store(true, Ordering::Relaxed);
    let scrapes = scraper.join().unwrap();
    server.shutdown();
    assert_equivalence(
        &index,
        &report,
        &scrapes,
        &format!("streaming x{match_workers}"),
    );
}

fn run_sharded_case(match_workers: usize) {
    let dataset = dataset();
    let index = EntityIndex::shared();
    let mut server = EntityServer::serve("127.0.0.1:0", Arc::clone(&index)).unwrap();
    let done = Arc::new(AtomicBool::new(false));
    let scraper = spawn_scraper(server.local_addr(), Arc::clone(&done));

    let matcher: Arc<dyn MatchFunction> = Arc::new(JaccardMatcher::default());
    let report = Pipeline::builder(dataset.kind)
        .config(runtime_config(&index, match_workers))
        .sharded(ShardedConfig::default())
        .build()
        .unwrap()
        .run(increments(&dataset), matcher, |_| {});
    done.store(true, Ordering::Relaxed);
    let scrapes = scraper.join().unwrap();
    server.shutdown();
    assert_equivalence(
        &index,
        &report,
        &scrapes,
        &format!("sharded x{match_workers}"),
    );
}

#[test]
fn streaming_index_equals_closure_sequential() {
    run_streaming_case(1);
}

#[test]
fn streaming_index_equals_closure_pooled() {
    run_streaming_case(4);
}

#[test]
fn sharded_index_equals_closure_sequential() {
    run_sharded_case(1);
}

#[test]
fn sharded_index_equals_closure_pooled() {
    run_sharded_case(4);
}

/// A point query served mid-cluster agrees with the final members list,
/// and the index answers `/entity/{id}` for a profile from the report.
#[test]
fn entity_endpoint_serves_report_members() {
    let dataset = dataset();
    let index = EntityIndex::shared();
    let matcher: Arc<dyn MatchFunction> = Arc::new(JaccardMatcher::default());
    let report = Pipeline::builder(dataset.kind)
        .config(runtime_config(&index, 2))
        .emitter(Box::new(Ipes::new(PierConfig::default())))
        .build()
        .unwrap()
        .run(increments(&dataset), matcher, |_| {});
    let mut server = EntityServer::serve("127.0.0.1:0", Arc::clone(&index)).unwrap();
    let probe = report.matches[0].pair.a;
    let (head, body) = http_get(server.local_addr(), &format!("/entity/{}", probe.0));
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    let want = index.members(probe).unwrap();
    assert_eq!(json_u64(&body, "size"), want.len() as u64);
    let members_json: Vec<String> = want.iter().map(|p| p.0.to_string()).collect();
    assert!(
        body.contains(&format!("\"members\":[{}]", members_json.join(","))),
        "{body}"
    );
    server.shutdown();
}
