//! Property tests for the idle/backpressure backoff ladder shared by the
//! stage-B idle loop and the bounded-channel send paths: the delay never
//! exceeds the cap, never undershoots the initial rung, grows
//! monotonically while unproductive, and drops back to the initial rung
//! the moment progress resets it.

use std::time::Duration;

use pier_runtime::IdleBackoff;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn backoff_stays_within_bounds_and_resets_on_progress(
        // true = a tick made progress (reset), false = idle (escalate).
        ops in prop::collection::vec(any::<bool>(), 1..200),
    ) {
        let mut backoff = IdleBackoff::new();
        let mut since_reset = 0u32;
        for &progressed in &ops {
            if progressed {
                backoff.reset();
                since_reset = 0;
            }
            let delay = backoff.next_delay();
            prop_assert!(delay >= IdleBackoff::INITIAL, "undershot initial rung");
            prop_assert!(delay <= IdleBackoff::MAX, "exceeded cap");
            // Doubling from INITIAL: rung n is min(INITIAL << n, MAX).
            let expect = Duration::from_nanos(
                (IdleBackoff::INITIAL.as_nanos() as u64) << since_reset.min(10),
            )
            .min(IdleBackoff::MAX);
            prop_assert_eq!(delay, expect);
            since_reset += 1;
        }
    }

    #[test]
    fn backoff_is_monotonic_until_capped(idles in 1usize..64) {
        let mut backoff = IdleBackoff::new();
        let mut prev = Duration::ZERO;
        for _ in 0..idles {
            let delay = backoff.next_delay();
            prop_assert!(delay >= prev);
            prop_assert!(delay <= IdleBackoff::MAX);
            prev = delay;
        }
        // Enough idle rounds always end pinned at the cap.
        if idles > 8 {
            prop_assert_eq!(prev, IdleBackoff::MAX);
        }
    }
}
