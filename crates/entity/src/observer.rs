//! The event-stream bridge: folds confirmed matches into an index.

use std::sync::Arc;

use pier_metrics::{Counter, Gauge, MetricsRegistry};
use pier_observe::{Event, PipelineObserver};

use crate::index::EntityIndex;

/// Telemetry handles for the cluster gauges, registered once up front.
struct ClusterMetrics {
    matches_applied: Arc<Counter>,
    merges: Arc<Counter>,
    clusters: Arc<Gauge>,
    profiles: Arc<Gauge>,
}

impl ClusterMetrics {
    fn register(registry: &MetricsRegistry) -> Self {
        ClusterMetrics {
            matches_applied: registry.counter(
                "pier_entity_matches_applied_total",
                "Confirmed matches folded into the entity index.",
                &[],
            ),
            merges: registry.counter(
                "pier_entity_merges_total",
                "Matches that merged two entity clusters.",
                &[],
            ),
            clusters: registry.gauge(
                "pier_entity_clusters",
                "Current number of entity clusters in the index.",
                &[],
            ),
            profiles: registry.gauge(
                "pier_entity_profiles",
                "Profiles that appeared in at least one applied match.",
                &[],
            ),
        }
    }
}

/// A [`PipelineObserver`] that applies every [`Event::MatchConfirmed`] to
/// a shared [`EntityIndex`].
///
/// Both runtime drivers emit `MatchConfirmed` from the stage-B coordinator
/// in confirmation order (workers only *evaluate*; all visible effects
/// happen on the coordinator), so teeing this observer onto a run yields
/// the same partition for any worker count. Other events pass through
/// untouched.
///
/// With a registry attached (the drivers pass the telemetry registry when
/// both subsystems are enabled), each applied match also updates the
/// `pier_entity_*` counters and gauges, so a Prometheus scrape sees the
/// cluster count and merge rate evolve live.
pub struct ClusterObserver {
    index: Arc<EntityIndex>,
    metrics: Option<ClusterMetrics>,
}

impl ClusterObserver {
    /// Wraps `index` with no telemetry.
    pub fn new(index: Arc<EntityIndex>) -> Self {
        ClusterObserver {
            index,
            metrics: None,
        }
    }

    /// Wraps `index`, registering cluster gauges when a registry is given.
    pub fn with_registry(index: Arc<EntityIndex>, registry: Option<&MetricsRegistry>) -> Self {
        ClusterObserver {
            index,
            metrics: registry.map(ClusterMetrics::register),
        }
    }

    /// The index this observer feeds.
    pub fn index(&self) -> &Arc<EntityIndex> {
        &self.index
    }
}

impl PipelineObserver for ClusterObserver {
    fn on_event(&self, event: &Event) {
        if let Event::MatchConfirmed { cmp, .. } = *event {
            let merged = self.index.apply(cmp);
            if let Some(m) = &self.metrics {
                m.matches_applied.inc();
                if merged {
                    m.merges.inc();
                }
                // Matches are rare relative to comparisons; a stats read
                // per match is cheap and keeps the gauges exact.
                let stats = self.index.stats();
                m.clusters.set(stats.clusters as i64);
                m.profiles.set(stats.profiles as i64);
            }
        }
    }
}

impl std::fmt::Debug for ClusterObserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterObserver")
            .field("index", &self.index)
            .field("telemetry", &self.metrics.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pier_types::{Comparison, ProfileId};

    fn confirm(a: u32, b: u32) -> Event {
        Event::MatchConfirmed {
            cmp: Comparison::new(ProfileId(a), ProfileId(b)),
            similarity: 1.0,
            at_secs: 0.0,
        }
    }

    #[test]
    fn match_events_feed_the_index() {
        let index = EntityIndex::shared();
        let observer = ClusterObserver::new(Arc::clone(&index));
        observer.on_event(&confirm(1, 2));
        observer.on_event(&confirm(2, 3));
        // Non-match events are ignored.
        observer.on_event(&Event::IncrementIngested {
            seq: 0,
            profiles: 2,
        });
        assert!(index.same_entity(ProfileId(1), ProfileId(3)));
        assert_eq!(index.stats().matches_applied, 2);
    }

    #[test]
    fn worker_tagged_matches_are_applied_once() {
        // The default on_worker_event forwards to on_event; a pooled run's
        // worker-tagged confirmations must land exactly once.
        let index = EntityIndex::shared();
        let observer = ClusterObserver::new(Arc::clone(&index));
        observer.on_worker_event(3, &confirm(1, 2));
        assert_eq!(index.stats().matches_applied, 1);
    }

    #[test]
    fn registry_gauges_track_the_index() {
        let registry = MetricsRegistry::shared();
        let index = EntityIndex::shared();
        let observer = ClusterObserver::with_registry(Arc::clone(&index), Some(&registry));
        observer.on_event(&confirm(1, 2));
        observer.on_event(&confirm(2, 3));
        observer.on_event(&confirm(1, 3)); // redundant: applied, no merge
        let counter = |name: &str| registry.counter(name, "", &[]).get();
        assert_eq!(counter("pier_entity_matches_applied_total"), 3);
        assert_eq!(counter("pier_entity_merges_total"), 2);
        assert_eq!(registry.gauge("pier_entity_clusters", "", &[]).get(), 1);
        assert_eq!(registry.gauge("pier_entity_profiles", "", &[]).get(), 3);
    }
}
