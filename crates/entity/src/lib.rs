//! Incremental entity clustering and live query serving for PIER.
//!
//! The progressive pipeline emits a ranked stream of confirmed matches;
//! this crate turns that stream into what a client actually wants — an
//! evolving partition of profiles into *entities* — and serves it while
//! the stream is still running. Two layers:
//!
//! * [`EntityIndex`] — a concurrent union-find (path halving + union by
//!   size) over [`pier_types::ProfileId`]s, maintaining cluster count,
//!   size histogram, and per-cluster member lists with a monotone
//!   generation counter, safe to read from any thread mid-merge.
//!   [`ClusterObserver`] bridges it onto a run: tee it onto the pipeline
//!   observer (both drivers do this when
//!   `RuntimeConfig::entities` is set) and every
//!   [`pier_observe::Event::MatchConfirmed`] folds into the partition in
//!   confirmation order, for any stage-B worker count.
//! * [`EntityServer`] — a zero-dependency HTTP endpoint answering
//!   `GET /entity/{profile_id}`, `GET /clusters`, and `GET /healthz` with
//!   hand-rolled JSON, each response built from a single consistent view
//!   of the index.
//!
//! ```
//! use pier_entity::{ClusterObserver, EntityIndex};
//! use pier_observe::{Event, PipelineObserver};
//! use pier_types::{Comparison, ProfileId};
//!
//! let index = EntityIndex::shared();
//! let observer = ClusterObserver::new(std::sync::Arc::clone(&index));
//! observer.on_event(&Event::MatchConfirmed {
//!     cmp: Comparison::new(ProfileId(7), ProfileId(9)),
//!     similarity: 0.93,
//!     at_secs: 0.1,
//! });
//! assert_eq!(index.entity_of(ProfileId(7)), index.entity_of(ProfileId(9)));
//! ```

#![warn(missing_docs)]

mod index;
mod observer;
mod server;

pub use index::{
    EntityCluster, EntityIndex, EntityLookup, EntitySnapshot, EntityStats, EntitySummary,
    TOP_CLUSTERS,
};
pub use observer::ClusterObserver;
pub use server::EntityServer;
