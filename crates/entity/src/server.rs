//! A hand-rolled JSON query endpoint for one [`EntityIndex`] on `std::net`.
//!
//! Same skeleton as `pier-metrics`' Prometheus endpoint: one background
//! thread accepts connections on a [`TcpListener`] in non-blocking mode
//! (shutdown is a flag check away), serves each request inline, and
//! depends on nothing beyond `std`. Three routes:
//!
//! * `GET /entity/{profile_id}` — the profile's cluster: representative,
//!   size, sorted members, and the generation of the view;
//! * `GET /clusters` — whole-index summary: counters, the size histogram,
//!   and the largest clusters with members;
//! * `GET /healthz` — liveness plus the generation and applied-match count.
//!
//! Every response is built from a *single* lock acquisition on the index
//! ([`EntityIndex::lookup`] / [`EntityIndex::snapshot`] /
//! [`EntityIndex::stats`]), so the fields of one response always agree
//! with each other even while the pipeline is merging.

use std::io::{self, BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use pier_types::ProfileId;

use crate::index::{EntityIndex, EntitySnapshot};

/// How long the accept loop sleeps between polls when idle.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// How long a connected client gets to produce a request line.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(2);

/// A live query endpoint for one [`EntityIndex`].
///
/// ```no_run
/// use pier_entity::{EntityIndex, EntityServer};
///
/// let index = EntityIndex::shared();
/// let mut server = EntityServer::serve("127.0.0.1:0", index).unwrap();
/// println!("query http://{}/clusters", server.local_addr());
/// // ... run the pipeline with the index attached ...
/// server.shutdown();
/// ```
pub struct EntityServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    requests: Arc<AtomicU64>,
    handle: Option<JoinHandle<()>>,
}

impl EntityServer {
    /// Binds `addr` (use port 0 for an OS-assigned port) and starts the
    /// accept thread.
    pub fn serve(addr: impl ToSocketAddrs, index: Arc<EntityIndex>) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let requests = Arc::new(AtomicU64::new(0));
        let handle = {
            let stop = Arc::clone(&stop);
            let requests = Arc::clone(&requests);
            std::thread::Builder::new()
                .name("pier-entity".into())
                .spawn(move || accept_loop(listener, index, stop, requests))?
        };
        Ok(EntityServer {
            addr,
            stop,
            requests,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests answered so far (any path, any status).
    pub fn requests_served(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Stops the accept thread and waits for it to exit. Idempotent;
    /// in-flight responses finish first.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for EntityServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for EntityServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EntityServer")
            .field("addr", &self.addr)
            .field("requests", &self.requests_served())
            .finish()
    }
}

fn accept_loop(
    listener: TcpListener,
    index: Arc<EntityIndex>,
    stop: Arc<AtomicBool>,
    requests: Arc<AtomicU64>,
) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if handle_client(stream, &index).is_ok() {
                    requests.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            // Transient accept errors (aborted handshakes): keep serving.
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn handle_client(stream: TcpStream, index: &EntityIndex) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(CLIENT_TIMEOUT))?;
    stream.set_write_timeout(Some(CLIENT_TIMEOUT))?;
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    // Drain the header block so well-behaved clients see a clean close.
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let mut stream = reader.into_inner();
    let (status, body) = match (method, path) {
        ("GET", "/clusters") => ("200 OK", clusters_json(&index.snapshot())),
        ("GET", "/healthz") => {
            let stats = index.stats();
            (
                "200 OK",
                format!(
                    "{{\"status\":\"ok\",\"generation\":{},\"matches_applied\":{}}}",
                    stats.generation, stats.matches_applied
                ),
            )
        }
        ("GET", p) if p.starts_with("/entity/") => entity_json(index, &p["/entity/".len()..]),
        ("GET", _) => ("404 Not Found", "{\"error\":\"not found\"}".to_string()),
        _ => (
            "405 Method Not Allowed",
            "{\"error\":\"method not allowed\"}".to_string(),
        ),
    };
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// `GET /entity/{id}`: the cluster of one profile, from one lock hold.
fn entity_json(index: &EntityIndex, raw_id: &str) -> (&'static str, String) {
    let Ok(id) = raw_id.parse::<u32>() else {
        return (
            "400 Bad Request",
            format!(
                "{{\"error\":\"profile id must be a u32\",\"got\":{}}}",
                json_string(raw_id)
            ),
        );
    };
    match index.lookup(ProfileId(id)) {
        Some(l) => (
            "200 OK",
            format!(
                "{{\"profile\":{id},\"entity\":{},\"generation\":{},\"size\":{},\"members\":{}}}",
                l.entity.0,
                l.generation,
                l.members.len(),
                json_ids(&l.members)
            ),
        ),
        None => (
            "404 Not Found",
            format!("{{\"error\":\"unknown profile\",\"profile\":{id}}}"),
        ),
    }
}

/// `GET /clusters`: the whole-index snapshot.
fn clusters_json(snap: &EntitySnapshot) -> String {
    let histogram: Vec<String> = snap
        .size_histogram
        .iter()
        .map(|(size, count)| format!("[{size},{count}]"))
        .collect();
    let largest: Vec<String> = snap
        .largest
        .iter()
        .map(|c| {
            format!(
                "{{\"entity\":{},\"size\":{},\"members\":{}}}",
                c.entity.0,
                c.size,
                json_ids(&c.members)
            )
        })
        .collect();
    format!(
        "{{\"generation\":{},\"matches_applied\":{},\"merges\":{},\"profiles\":{},\"clusters\":{},\"size_histogram\":[{}],\"largest\":[{}]}}",
        snap.generation,
        snap.matches_applied,
        snap.merges,
        snap.profiles,
        snap.clusters,
        histogram.join(","),
        largest.join(",")
    )
}

fn json_ids(ids: &[ProfileId]) -> String {
    let inner: Vec<String> = ids.iter().map(|p| p.0.to_string()).collect();
    format!("[{}]", inner.join(","))
}

/// Minimal JSON string escaping for echoing a malformed path segment.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pier_types::Comparison;
    use std::io::Read;

    fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        (head.to_string(), body.to_string())
    }

    fn linked_index() -> Arc<EntityIndex> {
        let index = EntityIndex::shared();
        index.apply(Comparison::new(ProfileId(1), ProfileId(2)));
        index.apply(Comparison::new(ProfileId(2), ProfileId(3)));
        index.apply(Comparison::new(ProfileId(10), ProfileId(11)));
        index
    }

    #[test]
    fn serves_entities_clusters_and_health() {
        let index = linked_index();
        let mut server = EntityServer::serve("127.0.0.1:0", Arc::clone(&index)).unwrap();
        let addr = server.local_addr();
        assert_ne!(addr.port(), 0);

        let (head, body) = http_get(addr, "/entity/3");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("application/json"));
        assert!(body.contains("\"profile\":3"));
        assert!(body.contains("\"size\":3"));
        assert!(body.contains("\"members\":[1,2,3]"));
        assert!(body.contains("\"generation\":3"));

        let (head, body) = http_get(addr, "/clusters");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(body.contains("\"clusters\":2"));
        assert!(body.contains("\"profiles\":5"));
        assert!(body.contains("\"size_histogram\":[[2,1],[3,1]]"));
        assert!(body.contains("\"members\":[1,2,3]"));

        let (head, body) = http_get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(body.contains("\"status\":\"ok\""));
        assert!(body.contains("\"matches_applied\":3"));

        // A view served later can only have a later-or-equal generation.
        index.apply(Comparison::new(ProfileId(3), ProfileId(10)));
        let (_, body) = http_get(addr, "/entity/11");
        assert!(body.contains("\"size\":5"), "{body}");
        assert!(body.contains("\"generation\":4"), "{body}");

        assert_eq!(server.requests_served(), 4);
        server.shutdown();
        server.shutdown(); // idempotent
    }

    #[test]
    fn error_paths_answer_json() {
        let mut server = EntityServer::serve("127.0.0.1:0", linked_index()).unwrap();
        let addr = server.local_addr();
        let (head, body) = http_get(addr, "/entity/99");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        assert!(body.contains("\"error\":\"unknown profile\""));
        let (head, body) = http_get(addr, "/entity/bogus");
        assert!(head.starts_with("HTTP/1.1 400"), "{head}");
        assert!(body.contains("\"got\":\"bogus\""));
        let (head, _) = http_get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        server.shutdown();
    }
}
