//! The incremental cluster index: a concurrent union-find over profiles.
//!
//! [`EntityIndex`] maintains the transitive closure of the confirmed-match
//! stream as it arrives — the evolving partition of profiles into entities
//! that is the actual output of progressive ER. Internally it is the same
//! disjoint-set structure as [`pier_types::IncrementalClusters`] (path
//! halving, union by size), wrapped for concurrency:
//!
//! * **one writer, many readers**: all state — parents, sizes, member
//!   lists, and every counter including the generation — lives behind a
//!   single `parking_lot::RwLock`, so any read is one lock acquisition and
//!   internally consistent by construction (no torn views);
//! * **lock-light reads**: readers resolve roots by *walking* the parent
//!   chain without compressing it, so they only ever take the read lock.
//!   Union by size bounds the walk at O(log n) even without compression;
//!   the writer's path halving keeps real chains far shorter;
//! * **generation counter**: bumped once per applied match, monotone, and
//!   returned inside every snapshot/lookup so clients can order the views
//!   they observe mid-stream.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use pier_types::{Comparison, ProfileId};

/// Parent slot value for a profile that never appeared in a match.
const UNSET: u32 = u32::MAX;

/// How many of the largest clusters a [`EntityIndex::snapshot`] carries
/// with full member lists.
pub const TOP_CLUSTERS: usize = 5;

/// Everything the index knows, behind one lock so every read is a
/// consistent view.
#[derive(Default)]
struct IndexState {
    /// parent[i] = parent slot of profile i; `UNSET` = unregistered.
    parent: Vec<u32>,
    /// size[i] = cluster size when i is a root.
    size: Vec<u32>,
    /// root -> members (unsorted; small lists are appended onto big ones).
    members: HashMap<u32, Vec<ProfileId>>,
    /// Profiles that appeared in at least one applied match.
    registered: usize,
    /// Matches that actually merged two clusters.
    merges: u64,
    /// Matches applied, merging or not.
    matches_applied: u64,
    /// Bumped once per applied match; monotone.
    generation: u64,
}

impl IndexState {
    fn ensure(&mut self, p: ProfileId) {
        let i = p.index();
        if self.parent.len() <= i {
            self.parent.resize(i + 1, UNSET);
            self.size.resize(i + 1, 0);
        }
        if self.parent[i] == UNSET {
            self.parent[i] = i as u32;
            self.size[i] = 1;
            self.members.insert(i as u32, vec![p]);
            self.registered += 1;
        }
    }

    /// Writer-side find with path halving.
    fn find_mut(&mut self, mut i: usize) -> usize {
        while self.parent[i] as usize != i {
            let grandparent = self.parent[self.parent[i] as usize];
            self.parent[i] = grandparent;
            i = grandparent as usize;
        }
        i
    }

    /// Reader-side find: walks the chain without mutating, so it works
    /// under the read lock. Union by size bounds the depth at O(log n).
    fn find_ro(&self, mut i: usize) -> Option<usize> {
        if i >= self.parent.len() || self.parent[i] == UNSET {
            return None;
        }
        while self.parent[i] as usize != i {
            i = self.parent[i] as usize;
        }
        Some(i)
    }

    fn clusters(&self) -> usize {
        self.registered - self.merges as usize
    }
}

/// Counters of the index at one instant (all read under one lock).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntityStats {
    /// Monotone view counter; bumped once per applied match.
    pub generation: u64,
    /// Matches applied so far (merging or redundant).
    pub matches_applied: u64,
    /// Matches that merged two clusters.
    pub merges: u64,
    /// Profiles that appeared in at least one applied match.
    pub profiles: usize,
    /// Current number of clusters.
    pub clusters: usize,
}

/// One profile's cluster, resolved under a single lock acquisition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntityLookup {
    /// The cluster's current representative (its union-find root).
    pub entity: ProfileId,
    /// Generation at which this view was taken.
    pub generation: u64,
    /// All members of the cluster, sorted by profile id.
    pub members: Vec<ProfileId>,
}

/// One cluster inside a [`EntitySnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntityCluster {
    /// The cluster's current representative (its union-find root).
    pub entity: ProfileId,
    /// Number of members.
    pub size: usize,
    /// All members, sorted by profile id.
    pub members: Vec<ProfileId>,
}

/// A consistent view of the whole index at one generation.
#[derive(Debug, Clone, PartialEq)]
pub struct EntitySnapshot {
    /// Generation at which this view was taken.
    pub generation: u64,
    /// Matches applied so far (merging or redundant).
    pub matches_applied: u64,
    /// Matches that merged two clusters.
    pub merges: u64,
    /// Profiles that appeared in at least one applied match.
    pub profiles: usize,
    /// Current number of clusters.
    pub clusters: usize,
    /// `(cluster size, how many clusters have it)`, ascending by size.
    pub size_histogram: Vec<(usize, usize)>,
    /// The [`TOP_CLUSTERS`] largest clusters with full member lists,
    /// ordered by descending size then first member.
    pub largest: Vec<EntityCluster>,
}

/// End-of-run entity summary carried by the runtime report.
#[derive(Debug, Clone, PartialEq)]
pub struct EntitySummary {
    /// Clusters in the index (profiles linked by at least one match).
    pub clusters: usize,
    /// Profiles that appeared in at least one applied match.
    pub matched_profiles: usize,
    /// Profiles the run ingested that never matched anything.
    pub singletons: usize,
    /// Size of the largest cluster (0 when no matches were applied).
    pub max_size: usize,
    /// Mean cluster size over the index's clusters (0.0 when empty).
    pub mean_size: f64,
    /// Matches applied over the run (merging or redundant).
    pub matches_applied: u64,
    /// Matches that merged two clusters.
    pub merges: u64,
}

/// Incrementally maintained entity clusters, safe to query while the
/// pipeline is still writing.
///
/// ```
/// use pier_entity::EntityIndex;
/// use pier_types::{Comparison, ProfileId};
///
/// let index = EntityIndex::new();
/// index.apply(Comparison::new(ProfileId(1), ProfileId(2)));
/// index.apply(Comparison::new(ProfileId(2), ProfileId(3)));
/// assert!(index.same_entity(ProfileId(1), ProfileId(3)));
/// assert_eq!(index.members(ProfileId(3)).unwrap().len(), 3);
/// assert_eq!(index.stats().clusters, 1);
/// ```
#[derive(Default)]
pub struct EntityIndex {
    state: RwLock<IndexState>,
}

impl EntityIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty index behind an `Arc`, ready to share between a
    /// driver (writer) and servers/monitors (readers).
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Folds one confirmed match into the partition; returns `true` if it
    /// merged two clusters (`false` if the pair was already transitively
    /// linked). Bumps the generation either way.
    pub fn apply(&self, cmp: Comparison) -> bool {
        let mut s = self.state.write();
        s.ensure(cmp.a);
        s.ensure(cmp.b);
        let ra = s.find_mut(cmp.a.index());
        let rb = s.find_mut(cmp.b.index());
        s.matches_applied += 1;
        s.generation += 1;
        if ra == rb {
            return false;
        }
        let (big, small) = if s.size[ra] >= s.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        s.parent[small] = big as u32;
        s.size[big] += s.size[small];
        let moved = s.members.remove(&(small as u32)).unwrap_or_default();
        s.members
            .get_mut(&(big as u32))
            .expect("big root has a member list")
            .extend(moved);
        s.merges += 1;
        true
    }

    /// The cluster representative of `p`, if `p` appeared in any match.
    pub fn entity_of(&self, p: ProfileId) -> Option<ProfileId> {
        let s = self.state.read();
        s.find_ro(p.index()).map(|r| ProfileId(r as u32))
    }

    /// All members of `p`'s cluster (sorted), if `p` appeared in any match.
    pub fn members(&self, p: ProfileId) -> Option<Vec<ProfileId>> {
        self.lookup(p).map(|l| l.members)
    }

    /// Whether two profiles are (transitively) the same entity.
    pub fn same_entity(&self, a: ProfileId, b: ProfileId) -> bool {
        let s = self.state.read();
        match (s.find_ro(a.index()), s.find_ro(b.index())) {
            (Some(ra), Some(rb)) => ra == rb,
            _ => false,
        }
    }

    /// Resolves `p`'s cluster — representative, members, generation — in a
    /// single lock acquisition, so the three agree with each other.
    pub fn lookup(&self, p: ProfileId) -> Option<EntityLookup> {
        let s = self.state.read();
        let root = s.find_ro(p.index())?;
        let mut members = s.members[&(root as u32)].clone();
        members.sort_unstable();
        Some(EntityLookup {
            entity: ProfileId(root as u32),
            generation: s.generation,
            members,
        })
    }

    /// The index's counters at one instant.
    pub fn stats(&self) -> EntityStats {
        let s = self.state.read();
        EntityStats {
            generation: s.generation,
            matches_applied: s.matches_applied,
            merges: s.merges,
            profiles: s.registered,
            clusters: s.clusters(),
        }
    }

    /// A consistent whole-index view: counters, the size histogram, and
    /// the [`TOP_CLUSTERS`] largest clusters with members. One lock
    /// acquisition; O(clusters) work.
    pub fn snapshot(&self) -> EntitySnapshot {
        let s = self.state.read();
        let mut histogram: HashMap<usize, usize> = HashMap::new();
        for m in s.members.values() {
            *histogram.entry(m.len()).or_insert(0) += 1;
        }
        let mut size_histogram: Vec<(usize, usize)> = histogram.into_iter().collect();
        size_histogram.sort_unstable();
        let mut roots: Vec<(&u32, &Vec<ProfileId>)> = s.members.iter().collect();
        roots.sort_by_key(|(root, m)| {
            (
                std::cmp::Reverse(m.len()),
                m.iter().min().copied().unwrap_or(ProfileId(**root)),
            )
        });
        let largest = roots
            .into_iter()
            .take(TOP_CLUSTERS)
            .map(|(root, m)| {
                let mut members = m.clone();
                members.sort_unstable();
                EntityCluster {
                    entity: ProfileId(*root),
                    size: members.len(),
                    members,
                }
            })
            .collect();
        EntitySnapshot {
            generation: s.generation,
            matches_applied: s.matches_applied,
            merges: s.merges,
            profiles: s.registered,
            clusters: s.clusters(),
            size_histogram,
            largest,
        }
    }

    /// Materializes the full partition: every cluster sorted by profile
    /// id, ordered by descending size then first member — the same shape
    /// as [`pier_types::IncrementalClusters::clusters`]`(1)`, for
    /// equivalence testing against a batch transitive closure.
    pub fn partition(&self) -> Vec<Vec<ProfileId>> {
        let s = self.state.read();
        let mut out: Vec<Vec<ProfileId>> = s.members.values().cloned().collect();
        for c in &mut out {
            c.sort_unstable();
        }
        out.sort_by(|a, b| b.len().cmp(&a.len()).then(a[0].cmp(&b[0])));
        out
    }

    /// End-of-run summary against the number of profiles the run actually
    /// ingested: profiles the index never saw are singleton entities.
    pub fn summary(&self, total_profiles: usize) -> EntitySummary {
        let s = self.state.read();
        let clusters = s.clusters();
        let max_size = s.members.values().map(Vec::len).max().unwrap_or(0);
        let mean_size = if clusters > 0 {
            s.registered as f64 / clusters as f64
        } else {
            0.0
        };
        EntitySummary {
            clusters,
            matched_profiles: s.registered,
            singletons: total_profiles.saturating_sub(s.registered),
            max_size,
            mean_size,
            matches_applied: s.matches_applied,
            merges: s.merges,
        }
    }
}

impl std::fmt::Debug for EntityIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("EntityIndex")
            .field("generation", &stats.generation)
            .field("profiles", &stats.profiles)
            .field("clusters", &stats.clusters)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(a: u32, b: u32) -> Comparison {
        Comparison::new(ProfileId(a), ProfileId(b))
    }

    #[test]
    fn matches_merge_transitively() {
        let index = EntityIndex::new();
        assert!(index.apply(c(1, 2)));
        assert!(index.apply(c(2, 3)));
        assert!(index.same_entity(ProfileId(1), ProfileId(3)));
        assert_eq!(
            index.members(ProfileId(3)).unwrap(),
            vec![ProfileId(1), ProfileId(2), ProfileId(3)]
        );
        let stats = index.stats();
        assert_eq!(stats.clusters, 1);
        assert_eq!(stats.profiles, 3);
        assert_eq!(stats.merges, 2);
        assert_eq!(stats.matches_applied, 2);
    }

    #[test]
    fn redundant_match_bumps_generation_but_not_merges() {
        let index = EntityIndex::new();
        index.apply(c(1, 2));
        index.apply(c(2, 3));
        let before = index.stats();
        assert!(!index.apply(c(1, 3)), "already transitively linked");
        let after = index.stats();
        assert_eq!(after.generation, before.generation + 1);
        assert_eq!(after.matches_applied, before.matches_applied + 1);
        assert_eq!(after.merges, before.merges);
        assert_eq!(after.clusters, 1);
    }

    #[test]
    fn unknown_profiles_resolve_to_none() {
        let index = EntityIndex::new();
        index.apply(c(1, 2));
        assert_eq!(index.entity_of(ProfileId(99)), None);
        assert_eq!(index.members(ProfileId(99)), None);
        assert!(!index.same_entity(ProfileId(1), ProfileId(99)));
        assert!(index.lookup(ProfileId(99)).is_none());
    }

    #[test]
    fn lookup_is_internally_consistent() {
        let index = EntityIndex::new();
        index.apply(c(4, 7));
        index.apply(c(7, 2));
        let l = index.lookup(ProfileId(2)).unwrap();
        assert_eq!(l.members, vec![ProfileId(2), ProfileId(4), ProfileId(7)]);
        assert!(l.members.contains(&l.entity));
        assert_eq!(l.generation, index.stats().generation);
    }

    #[test]
    fn snapshot_histogram_and_largest_agree() {
        let index = EntityIndex::new();
        index.apply(c(0, 1));
        index.apply(c(1, 2)); // {0,1,2}
        index.apply(c(10, 11)); // {10,11}
        index.apply(c(20, 21)); // {20,21}
        let snap = index.snapshot();
        assert_eq!(snap.clusters, 3);
        assert_eq!(snap.profiles, 7);
        assert_eq!(snap.size_histogram, vec![(2, 2), (3, 1)]);
        // Σ size·count == registered profiles.
        let total: usize = snap.size_histogram.iter().map(|(s, n)| s * n).sum();
        assert_eq!(total, snap.profiles);
        // Largest first, ties by first member.
        assert_eq!(snap.largest.len(), 3);
        assert_eq!(
            snap.largest[0].members,
            vec![ProfileId(0), ProfileId(1), ProfileId(2)]
        );
        assert_eq!(snap.largest[1].members, vec![ProfileId(10), ProfileId(11)]);
        assert_eq!(snap.largest[2].members, vec![ProfileId(20), ProfileId(21)]);
        assert!(snap.largest.iter().all(|c| c.members.contains(&c.entity)));
    }

    #[test]
    fn partition_matches_incremental_clusters_shape() {
        use pier_types::IncrementalClusters;
        let pairs = [c(5, 1), c(1, 9), c(20, 21), c(9, 5)];
        let index = EntityIndex::new();
        let mut oracle = IncrementalClusters::new();
        for p in pairs {
            index.apply(p);
            oracle.add_match(p);
        }
        assert_eq!(index.partition(), oracle.clusters(1));
    }

    #[test]
    fn summary_counts_singletons_against_the_run() {
        let index = EntityIndex::new();
        index.apply(c(0, 1));
        index.apply(c(1, 2));
        index.apply(c(5, 6));
        let summary = index.summary(10);
        assert_eq!(summary.clusters, 2);
        assert_eq!(summary.matched_profiles, 5);
        assert_eq!(summary.singletons, 5);
        assert_eq!(summary.max_size, 3);
        assert!((summary.mean_size - 2.5).abs() < 1e-12);
        // An empty index: everything is a singleton.
        let empty = EntityIndex::new().summary(4);
        assert_eq!(empty.clusters, 0);
        assert_eq!(empty.singletons, 4);
        assert_eq!(empty.max_size, 0);
        assert_eq!(empty.mean_size, 0.0);
    }

    #[test]
    fn long_chains_stay_fast_and_correct() {
        let index = EntityIndex::new();
        for i in 0..10_000u32 {
            index.apply(c(i, i + 1));
        }
        assert!(index.same_entity(ProfileId(0), ProfileId(10_000)));
        let stats = index.stats();
        assert_eq!(stats.clusters, 1);
        assert_eq!(stats.profiles, 10_001);
        assert_eq!(index.members(ProfileId(5_000)).unwrap().len(), 10_001);
    }
}
