//! Property tests for [`EntityIndex`]:
//!
//! 1. on arbitrary match sequences, the index's partition equals a naive
//!    BFS transitive closure over the same pairs (the oracle builds an
//!    adjacency list and floods components — no union-find involved);
//! 2. concurrent readers during merges never observe a torn snapshot, and
//!    every reader sees a monotone generation.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use pier_entity::EntityIndex;
use pier_types::{Comparison, ProfileId};
use proptest::prelude::*;

/// The oracle: BFS transitive closure over the match pairs, materialized
/// in the same shape as [`EntityIndex::partition`] (each component sorted,
/// components ordered by descending size then first member).
fn bfs_closure(pairs: &[(u32, u32)]) -> Vec<Vec<ProfileId>> {
    let mut adjacency: HashMap<u32, Vec<u32>> = HashMap::new();
    for &(a, b) in pairs {
        adjacency.entry(a).or_default().push(b);
        adjacency.entry(b).or_default().push(a);
    }
    let mut seen: HashSet<u32> = HashSet::new();
    let mut components = Vec::new();
    let mut nodes: Vec<u32> = adjacency.keys().copied().collect();
    nodes.sort_unstable();
    for start in nodes {
        if !seen.insert(start) {
            continue;
        }
        let mut component = vec![start];
        let mut queue = VecDeque::from([start]);
        while let Some(node) = queue.pop_front() {
            for &next in &adjacency[&node] {
                if seen.insert(next) {
                    component.push(next);
                    queue.push_back(next);
                }
            }
        }
        component.sort_unstable();
        components.push(component.into_iter().map(ProfileId).collect::<Vec<_>>());
    }
    components.sort_by(|a, b| b.len().cmp(&a.len()).then(a[0].cmp(&b[0])));
    components
}

proptest! {
    #[test]
    fn partition_equals_bfs_transitive_closure(
        raw in proptest::collection::vec((0u32..48, 0u32..48), 0..120)
    ) {
        let pairs: Vec<(u32, u32)> = raw.into_iter().filter(|(a, b)| a != b).collect();
        let index = EntityIndex::new();
        for &(a, b) in &pairs {
            index.apply(Comparison::new(ProfileId(a), ProfileId(b)));
        }
        prop_assert_eq!(index.partition(), bfs_closure(&pairs));
    }

    #[test]
    fn point_queries_agree_with_the_closure(
        raw in proptest::collection::vec((0u32..32, 0u32..32), 1..80)
    ) {
        let pairs: Vec<(u32, u32)> = raw.into_iter().filter(|(a, b)| a != b).collect();
        let index = EntityIndex::new();
        for &(a, b) in &pairs {
            index.apply(Comparison::new(ProfileId(a), ProfileId(b)));
        }
        let oracle = bfs_closure(&pairs);
        let component_of = |p: ProfileId| oracle.iter().find(|c| c.contains(&p));
        for id in 0u32..32 {
            let p = ProfileId(id);
            match component_of(p) {
                Some(component) => {
                    prop_assert_eq!(index.members(p).as_ref(), Some(component));
                    // Every member resolves to the same representative.
                    let root = index.entity_of(p);
                    prop_assert!(root.is_some());
                    for &q in component.iter() {
                        prop_assert_eq!(index.entity_of(q), root);
                        prop_assert!(index.same_entity(p, q));
                    }
                }
                None => {
                    prop_assert_eq!(index.entity_of(p), None);
                    prop_assert_eq!(index.members(p), None);
                }
            }
        }
        // Counters agree with the closure too.
        let stats = index.stats();
        prop_assert_eq!(stats.clusters, oracle.len());
        prop_assert_eq!(stats.profiles, oracle.iter().map(Vec::len).sum::<usize>());
        prop_assert_eq!(stats.matches_applied, pairs.len() as u64);
        prop_assert_eq!(stats.generation, pairs.len() as u64);
    }

    #[test]
    fn snapshot_histogram_is_the_partition_histogram(
        raw in proptest::collection::vec((0u32..40, 0u32..40), 0..100)
    ) {
        let pairs: Vec<(u32, u32)> = raw.into_iter().filter(|(a, b)| a != b).collect();
        let index = EntityIndex::new();
        for &(a, b) in &pairs {
            index.apply(Comparison::new(ProfileId(a), ProfileId(b)));
        }
        let snap = index.snapshot();
        let partition = index.partition();
        let mut want: HashMap<usize, usize> = HashMap::new();
        for c in &partition {
            *want.entry(c.len()).or_insert(0) += 1;
        }
        let mut want: Vec<(usize, usize)> = want.into_iter().collect();
        want.sort_unstable();
        prop_assert_eq!(&snap.size_histogram, &want);
        // The "largest" list is a prefix of the canonical partition order.
        for (cluster, component) in snap.largest.iter().zip(partition.iter()) {
            prop_assert_eq!(&cluster.members, component);
            prop_assert_eq!(cluster.size, component.len());
        }
    }
}

/// Deterministic pseudo-random pair stream for the stress test.
fn stress_pairs(n: usize, universe: u32) -> Vec<Comparison> {
    let mut state = 0x243f_6a88_85a3_08d3u64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n)
        .map(|_| {
            let a = (next() % universe as u64) as u32;
            let mut b = (next() % universe as u64) as u32;
            if b == a {
                b = (b + 1) % universe;
            }
            Comparison::new(ProfileId(a), ProfileId(b))
        })
        .collect()
}

/// Concurrent readers during merges: no torn snapshots (every view's
/// internal invariants hold), generations monotone per reader, and the
/// final state equals a sequential replay.
#[test]
fn concurrent_readers_see_consistent_monotone_views() {
    const MATCHES: usize = 20_000;
    const UNIVERSE: u32 = 2_000;
    const READERS: usize = 4;

    let index = EntityIndex::shared();
    let pairs = stress_pairs(MATCHES, UNIVERSE);
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        for reader in 0..READERS {
            let index = Arc::clone(&index);
            let done = Arc::clone(&done);
            scope.spawn(move || {
                let mut last_generation = 0u64;
                let mut views = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let snap = index.snapshot();
                    // Generation only moves forward.
                    assert!(
                        snap.generation >= last_generation,
                        "reader {reader}: generation went backwards"
                    );
                    last_generation = snap.generation;
                    // A torn view would break these identities.
                    assert!(snap.merges <= snap.matches_applied);
                    assert_eq!(snap.generation, snap.matches_applied);
                    assert_eq!(
                        snap.profiles,
                        snap.clusters + snap.merges as usize,
                        "registered == clusters + merges"
                    );
                    let histogram_profiles: usize =
                        snap.size_histogram.iter().map(|(s, n)| s * n).sum();
                    assert_eq!(histogram_profiles, snap.profiles);
                    let histogram_clusters: usize =
                        snap.size_histogram.iter().map(|(_, n)| n).sum();
                    assert_eq!(histogram_clusters, snap.clusters);
                    // Point lookups are consistent within themselves.
                    if let Some(l) = index.lookup(ProfileId((views % UNIVERSE as u64) as u32)) {
                        assert!(l.members.contains(&l.entity));
                        assert!(l.members.windows(2).all(|w| w[0] < w[1]));
                    }
                    views += 1;
                }
                assert!(views > 0, "reader {reader} never got a view");
            });
        }

        // The writer: one thread, like the stage-B coordinator.
        for &cmp in &pairs {
            index.apply(cmp);
        }
        done.store(true, Ordering::Relaxed);
    });

    // The concurrent run left exactly the sequential closure behind.
    let replay = EntityIndex::new();
    for &cmp in &pairs {
        replay.apply(cmp);
    }
    assert_eq!(index.partition(), replay.partition());
    assert_eq!(index.stats(), replay.stats());
}
