#!/usr/bin/env bash
# CI smoke test for the live entity-serving subsystem.
#
# Runs the observed_stream example with an entity endpoint on an
# OS-assigned port, queries /clusters, /healthz and /entity/{id} while
# the endpoint is held open, and asserts:
#
#   * /clusters answers 200 with a generation-consistent snapshot
#     (generation == matches_applied, profiles == clusters + merges,
#     histogram and largest-cluster list shaped as documented);
#   * /healthz answers 200 with status "ok";
#   * /entity/{id} for a member of the largest cluster answers 200 with
#     that id among the members, and a bogus id answers 404.
#
# Usage: scripts/entity_smoke.sh  (from the repo root; builds the example)
set -euo pipefail

cd "$(dirname "$0")/.."

log=$(mktemp)
trap 'kill "$pid" 2>/dev/null || true; rm -f "$log"' EXIT

cargo build --release --example observed_stream

./target/release/examples/observed_stream \
    --entity-addr 127.0.0.1:0 \
    --match-workers 2 \
    --hold-metrics-secs 30 >"$log" 2>&1 &
pid=$!

# The example prints "entities: query with `curl http://ADDR/clusters`"
# once the endpoint is bound; poll the log for the assigned address.
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/.*query with `curl http:\/\/\([^/]*\)\/clusters`.*/\1/p' "$log" | head -n1)
    [ -n "$addr" ] && break
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "observed_stream exited before binding the entity endpoint" >&2
        cat "$log" >&2
        exit 1
    fi
    sleep 0.2
done
if [ -z "$addr" ]; then
    echo "entity endpoint address never appeared in the log" >&2
    cat "$log" >&2
    exit 1
fi
echo "entity endpoint: $addr"

python3 - "$addr" <<'EOF'
import json
import sys
import time
import urllib.error
import urllib.request

addr = sys.argv[1]


def get(path):
    return json.loads(
        urllib.request.urlopen(f"http://{addr}{path}", timeout=10).read().decode()
    )


health = get("/healthz")
assert health["status"] == "ok", health
assert health["generation"] == health["matches_applied"], health

# The endpoint binds before the stream starts; wait until the run has
# actually resolved something before probing cluster shape.
snap = get("/clusters")
deadline = time.monotonic() + 60
while not snap["largest"] and time.monotonic() < deadline:
    time.sleep(0.2)
    snap = get("/clusters")
print(
    f"/clusters: generation {snap['generation']}, {snap['clusters']} clusters "
    f"over {snap['profiles']} profiles"
)
# Lock-consistent snapshot invariants, as documented in DESIGN.md §12.
assert snap["generation"] == snap["matches_applied"], snap
assert snap["profiles"] == snap["clusters"] + snap["merges"], snap
assert isinstance(snap["size_histogram"], list), snap
assert sum(s * c for s, c in snap["size_histogram"]) == snap["profiles"], snap
assert sum(c for _, c in snap["size_histogram"]) == snap["clusters"], snap
largest = snap["largest"]
assert largest, f"no clusters resolved yet: {snap}"
top = largest[0]
assert top["size"] == len(top["members"]), top

# A point query for a member of the largest cluster finds that cluster.
probe = top["members"][0]
entity = get(f"/entity/{probe}")
print(f"/entity/{probe}: entity {entity['entity']}, size {entity['size']}")
assert probe in entity["members"], entity
assert entity["size"] == len(entity["members"]), entity
assert entity["generation"] >= snap["generation"], (entity, snap)

# An unknown profile id is a clean 404, not a crash.
try:
    urllib.request.urlopen(f"http://{addr}/entity/4294967294", timeout=10)
except urllib.error.HTTPError as err:
    assert err.code == 404, err.code
    body = json.loads(err.read().decode())
    assert body["error"] == "unknown profile", body
else:
    raise AssertionError("expected 404 for an unknown profile id")
EOF

wait "$pid"
echo "--- example tail ---"
tail -n 7 "$log"

grep -q "=== resolved entities ===" "$log" || {
    echo "final entity summary missing from the example output" >&2
    exit 1
}

echo "entity smoke passed"
