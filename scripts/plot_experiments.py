#!/usr/bin/env python3
"""Plot the CSV series produced by the experiment benches.

Usage:
    cargo bench --workspace                 # writes target/experiments/<id>/*.csv
    python3 scripts/plot_experiments.py     # writes target/experiments/<id>.svg

Each figure directory becomes one SVG with all its series overlaid —
matching the layout of the corresponding figure in the paper. Requires
matplotlib; falls back to a textual summary when it is unavailable.
"""

from __future__ import annotations

import csv
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
_CANDIDATES = [
    ROOT / "target" / "experiments",
    ROOT / "crates" / "bench" / "target" / "experiments",  # older runs
]
EXPERIMENTS = next((p for p in _CANDIDATES if p.is_dir()), _CANDIDATES[0])


def load_series(path: Path) -> tuple[str, list[float], list[float]]:
    with path.open() as fh:
        reader = csv.reader(fh)
        header = next(reader)
        xs, ys = [], []
        for row in reader:
            xs.append(float(row[0]))
            ys.append(float(row[1]))
    return header[0], xs, ys


def main() -> int:
    if not EXPERIMENTS.is_dir():
        print(f"no {EXPERIMENTS} — run `cargo bench --workspace` first", file=sys.stderr)
        return 1
    try:
        import matplotlib

        matplotlib.use("svg")
        import matplotlib.pyplot as plt
    except ImportError:
        plt = None
        print("matplotlib unavailable — printing summaries only", file=sys.stderr)

    for figure_dir in sorted(p for p in EXPERIMENTS.iterdir() if p.is_dir()):
        csvs = sorted(figure_dir.glob("*.csv"))
        if not csvs:
            continue
        if plt is None:
            for path in csvs:
                x_name, xs, ys = load_series(path)
                final = ys[-1] if ys else float("nan")
                print(f"{figure_dir.name}/{path.stem}: final pc={final:.3f} over {x_name}")
            continue
        fig, ax = plt.subplots(figsize=(8, 5))
        x_label = "x"
        for path in csvs:
            x_name, xs, ys = load_series(path)
            x_label = x_name
            ax.plot(xs, ys, label=path.stem, linewidth=1.2)
        ax.set_xlabel(x_label)
        ax.set_ylabel("pair completeness")
        ax.set_title(figure_dir.name)
        ax.set_ylim(-0.02, 1.02)
        ax.grid(True, alpha=0.3)
        ax.legend(fontsize=6, ncol=2, loc="lower right")
        out = EXPERIMENTS / f"{figure_dir.name}.svg"
        fig.savefig(out, bbox_inches="tight")
        plt.close(fig)
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
