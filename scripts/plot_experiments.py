#!/usr/bin/env python3
"""Plot the CSV series and JSONL event logs under target/experiments.

Usage:
    cargo bench --workspace                 # writes target/experiments/<id>/*.csv
    cargo run --example observed_stream     # a JsonlObserver writes .../events.jsonl
    python3 scripts/plot_experiments.py     # writes target/experiments/<id>.svg

Each figure directory becomes one SVG with all its series overlaid —
matching the layout of the corresponding figure in the paper. Directories
holding an `events.jsonl` (written by pier-observe's JsonlObserver) become
a timeline SVG instead: cumulative comparisons/matches, adaptive-K steps,
and per-phase time share. Requires matplotlib; falls back to a textual
summary when it is unavailable.
"""

from __future__ import annotations

import csv
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
_CANDIDATES = [
    ROOT / "target" / "experiments",
    ROOT / "crates" / "bench" / "target" / "experiments",  # older runs
]
EXPERIMENTS = next((p for p in _CANDIDATES if p.is_dir()), _CANDIDATES[0])


def load_series(path: Path) -> tuple[str, list[float], list[float]]:
    with path.open() as fh:
        reader = csv.reader(fh)
        header = next(reader)
        xs, ys = [], []
        for row in reader:
            xs.append(float(row[0]))
            ys.append(float(row[1]))
    return header[0], xs, ys


def load_events(path: Path) -> list[dict]:
    """One flat JSON object per line, as written by JsonlObserver.

    Unparseable lines are skipped with a warning: a run killed mid-write
    legitimately leaves a truncated final line in the buffered log.
    """
    events = []
    skipped = 0
    with path.open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                skipped += 1
    if skipped:
        print(f"warning: {path}: skipped {skipped} unparseable line(s)")
    return events


def cumulative(events: list[dict], kind: str) -> tuple[list[float], list[int]]:
    """Receive-time timeline of the running count of one event kind."""
    ts, counts = [], []
    n = 0
    for ev in events:
        if ev["event"] == kind:
            n += 1
            ts.append(ev["t"])
            counts.append(n)
    return ts, counts


def summarize_events(name: str, events: list[dict]) -> None:
    by_kind: dict[str, int] = {}
    for ev in events:
        by_kind[ev["event"]] = by_kind.get(ev["event"], 0) + 1
    span = events[-1]["t"] - events[0]["t"] if events else 0.0
    kinds = ", ".join(f"{k}={n}" for k, n in sorted(by_kind.items()))
    print(f"{name}/events.jsonl: {len(events)} events over {span:.3f}s ({kinds})")


def plot_events(name: str, events: list[dict], out: Path, plt) -> None:
    """Timeline figure: cumulative work, adaptive K, and phase time share."""
    fig, (ax_top, ax_bottom) = plt.subplots(
        2, 1, figsize=(8, 7), gridspec_kw={"height_ratios": [3, 1]}
    )

    for kind, style in [
        ("ComparisonEmitted", dict(color="tab:blue", label="comparisons emitted")),
        ("CfFiltered", dict(color="tab:gray", label="cf-filtered", linestyle=":")),
        ("MatchConfirmed", dict(color="tab:green", label="matches confirmed")),
    ]:
        ts, counts = cumulative(events, kind)
        if ts:
            ax_top.plot(ts, counts, linewidth=1.2, **style)
    ax_top.set_xlabel("seconds since run start")
    ax_top.set_ylabel("cumulative events")
    ax_top.set_title(f"{name} — event timeline")
    ax_top.grid(True, alpha=0.3)

    k_steps = [(ev["t"], ev["new_k"]) for ev in events if ev["event"] == "AdaptiveKChanged"]
    if k_steps:
        ax_k = ax_top.twinx()
        ax_k.step(
            [t for t, _ in k_steps],
            [k for _, k in k_steps],
            where="post",
            color="tab:red",
            linewidth=1.0,
            label="adaptive K",
        )
        ax_k.set_ylabel("K", color="tab:red")
    ax_top.legend(fontsize=7, loc="upper left")

    # Bottom panel: where the pipeline spent its time, per phase.
    phase_totals: dict[str, float] = {}
    for ev in events:
        if ev["event"] == "PhaseTiming":
            phase_totals[ev["phase"]] = phase_totals.get(ev["phase"], 0.0) + ev["secs"]
    if phase_totals:
        phases = sorted(phase_totals)
        ax_bottom.bar(phases, [phase_totals[p] for p in phases], color="tab:purple")
        ax_bottom.set_ylabel("total seconds")
        ax_bottom.set_title("time per phase", fontsize=9)
        ax_bottom.grid(True, axis="y", alpha=0.3)
    else:
        ax_bottom.axis("off")

    fig.savefig(out, bbox_inches="tight")
    plt.close(fig)
    print(f"wrote {out}")


def plot_shard_scaling(name: str, csvs: list[Path], out: Path, plt) -> None:
    """Two-panel shard-scaling figure: stage-A throughput vs shard count,
    and the PC-over-time overlay of the sharded vs unsharded runtime."""
    series = {path.stem: load_series(path) for path in csvs}
    fig, (ax_tp, ax_pc) = plt.subplots(1, 2, figsize=(11, 4.5))

    for stem, style in [
        ("critical_path_throughput", dict(color="tab:blue", marker="o", label="critical path")),
        (
            "threaded_wall_clock_throughput",
            dict(color="tab:gray", marker="s", linestyle="--", label="threaded wall clock"),
        ),
    ]:
        if stem in series:
            _, xs, ys = series[stem]
            ax_tp.plot(xs, ys, linewidth=1.2, **style)
    ax_tp.set_xscale("log", base=2)
    ax_tp.set_xticks([1, 2, 4, 8], labels=["1", "2", "4", "8"])
    ax_tp.set_xlabel("shards")
    ax_tp.set_ylabel("stage-A profiles/s")
    ax_tp.set_title("throughput vs shard count", fontsize=9)
    ax_tp.grid(True, alpha=0.3)
    ax_tp.legend(fontsize=7)

    for stem, style in [
        ("pc_over_time_sharded4", dict(color="tab:blue", label="sharded (4)")),
        ("pc_over_time_unsharded", dict(color="tab:orange", linestyle="--", label="unsharded")),
    ]:
        if stem in series:
            x_name, xs, ys = series[stem]
            ax_pc.plot(xs, ys, linewidth=1.2, **style)
            ax_pc.set_xlabel(x_name)
    ax_pc.set_ylabel("pair completeness")
    ax_pc.set_ylim(-0.02, 1.02)
    ax_pc.set_title("recall over time (same budget)", fontsize=9)
    ax_pc.grid(True, alpha=0.3)
    ax_pc.legend(fontsize=7, loc="lower right")

    fig.suptitle(name)
    fig.savefig(out, bbox_inches="tight")
    plt.close(fig)
    print(f"wrote {out}")


def plot_matcher_throughput(name: str, csvs: list[Path], out: Path, plt) -> None:
    """Two-panel stage-B figure: Myers kernel speedup over the naive DP
    per string length, and executor comparisons/s vs match workers."""
    series = {path.stem: load_series(path) for path in csvs}
    fig, (ax_kernel, ax_exec) = plt.subplots(1, 2, figsize=(11, 4.5))

    if "kernel_speedup" in series:
        _, xs, ys = series["kernel_speedup"]
        ax_kernel.plot(xs, ys, color="tab:green", marker="o", linewidth=1.2)
        ax_kernel.axhline(5.0, color="tab:red", linestyle=":", linewidth=1.0, label="5x contract")
        ax_kernel.set_xscale("log", base=2)
        ax_kernel.set_xticks(xs, labels=[str(int(x)) for x in xs])
    ax_kernel.set_xlabel("string length (chars)")
    ax_kernel.set_ylabel("speedup over naive DP")
    ax_kernel.set_title("Myers bit-parallel Levenshtein", fontsize=9)
    ax_kernel.grid(True, alpha=0.3)
    ax_kernel.legend(fontsize=7)

    for stem, style in [
        ("critical_path_throughput", dict(color="tab:blue", marker="o", label="critical path")),
        (
            "threaded_wall_clock_throughput",
            dict(color="tab:gray", marker="s", linestyle="--", label="threaded wall clock"),
        ),
    ]:
        if stem in series:
            _, xs, ys = series[stem]
            ax_exec.plot(xs, ys, linewidth=1.2, **style)
    ax_exec.set_xscale("log", base=2)
    ax_exec.set_xticks([1, 2, 4, 8], labels=["1", "2", "4", "8"])
    ax_exec.set_xlabel("match workers")
    ax_exec.set_ylabel("stage-B comparisons/s")
    ax_exec.set_title("parallel match executor (ED matcher)", fontsize=9)
    ax_exec.grid(True, alpha=0.3)
    ax_exec.legend(fontsize=7)

    fig.suptitle(name)
    fig.savefig(out, bbox_inches="tight")
    plt.close(fig)
    print(f"wrote {out}")


def plot_metrics_overhead(name: str, csvs: list[Path], out: Path, plt) -> None:
    """Two-panel telemetry figure: the live registry timelines sampled
    mid-run (queue depths + cumulative comparisons on the left, the recall
    estimate on the right), with the measured metered-vs-noop overhead of
    the metrics sink in the title."""
    series = {path.stem: load_series(path) for path in csvs}
    fig, (ax_q, ax_r) = plt.subplots(1, 2, figsize=(11, 4.5))

    for stem, style in [
        ("queue_depth_increments", dict(color="tab:blue", label="increments queue")),
        ("queue_depth_matches", dict(color="tab:orange", linestyle="--", label="matches queue")),
    ]:
        if stem in series:
            x_name, xs, ys = series[stem]
            ax_q.plot(xs, ys, linewidth=1.2, **style)
            ax_q.set_xlabel(x_name)
    ax_q.set_ylabel("queue depth (messages)")
    if "comparisons_total" in series:
        _, xs, ys = series["comparisons_total"]
        ax_c = ax_q.twinx()
        ax_c.plot(xs, ys, color="tab:gray", linewidth=1.0, alpha=0.7)
        ax_c.set_ylabel("comparisons total", color="tab:gray")
    ax_q.set_title("live queue gauges during a run", fontsize=9)
    ax_q.grid(True, alpha=0.3)
    ax_q.legend(fontsize=7, loc="upper right")

    if "recall_trajectory" in series:
        x_name, xs, ys = series["recall_trajectory"]
        ax_r.plot(xs, ys, color="tab:green", linewidth=1.2, label="pier_recall_estimate")
        ax_r.set_xlabel(x_name)
    ax_r.set_ylabel("recall estimate")
    ax_r.set_ylim(-0.02, 1.02)
    ax_r.set_title("recall gauge sampled from the registry", fontsize=9)
    ax_r.grid(True, alpha=0.3)
    ax_r.legend(fontsize=7, loc="lower right")

    title = name
    if "overhead_pct" in series:
        _, _, ys = series["overhead_pct"]
        if ys:
            title = f"{name} — metered-vs-noop overhead {ys[-1]:.2f}% (contract < 5%)"
    fig.suptitle(title)
    fig.savefig(out, bbox_inches="tight")
    plt.close(fig)
    print(f"wrote {out}")


def plot_stage_a_throughput(name: str, csvs: list[Path], out: Path, plt) -> None:
    """Two-panel stage-A core figure: per-rep throughput of the retired
    HashMap path vs the dense-slab path (speedup in the title), and the
    equivalence-matrix PC across schemes × topologies — every cell is only
    emitted after the bench asserted bitwise-identical comparison sets."""
    series = {path.stem: load_series(path) for path in csvs}
    fig, (ax_tp, ax_eq) = plt.subplots(1, 2, figsize=(11, 4.5))

    for stem, style in [
        ("legacy_path_throughput", dict(color="tab:gray", marker="s", label="HashMap path")),
        ("dense_path_throughput", dict(color="tab:blue", marker="o", label="dense slab path")),
    ]:
        if stem in series:
            x_name, xs, ys = series[stem]
            ax_tp.plot(xs, ys, linewidth=1.2, **style)
            ax_tp.set_xlabel(x_name)
            ax_tp.set_xticks(xs, labels=[str(int(x)) for x in xs])
    ax_tp.set_ylabel("stage-A profiles/s")
    ax_tp.set_title("weighting-core throughput per rep", fontsize=9)
    ax_tp.grid(True, alpha=0.3)
    ax_tp.legend(fontsize=7, loc="center right")

    if "equivalence_pc" in series:
        # Cell encoding from the bench: 2 * scheme_index + topology,
        # schemes in WeightingScheme::all() order, topology 0 = unsharded.
        schemes = ["CBS", "ECBS", "JS", "EJS", "ARCS"]
        _, xs, ys = series["equivalence_pc"]
        labels, values = [], []
        for x, y in zip(xs, ys):
            cell = int(x)
            scheme = schemes[cell // 2] if cell // 2 < len(schemes) else f"s{cell // 2}"
            topo = "1" if cell % 2 == 0 else "4sh"
            labels.append(f"{scheme}\n{topo}")
            values.append(y)
        ax_eq.bar(labels, values, color="tab:green", width=0.7)
        ax_eq.tick_params(axis="x", labelsize=7)
    ax_eq.set_ylabel("pair completeness")
    ax_eq.set_ylim(0, 1.02)
    ax_eq.set_title("equivalence matrix (old ≡ new, bitwise)", fontsize=9)
    ax_eq.grid(True, axis="y", alpha=0.3)

    title = name
    if "legacy_path_throughput" in series and "dense_path_throughput" in series:
        legacy = max(series["legacy_path_throughput"][2], default=0.0)
        dense = max(series["dense_path_throughput"][2], default=0.0)
        if legacy > 0:
            title = f"{name} — dense/HashMap speedup {dense / legacy:.2f}x (contract >= 1.3x)"
    fig.suptitle(title)
    fig.savefig(out, bbox_inches="tight")
    plt.close(fig)
    print(f"wrote {out}")


def plot_cluster_throughput(name: str, csvs: list[Path], out: Path, plt) -> None:
    """Three-panel entity-index figure: merge-apply rate as the union-find
    warms up, the final cluster-size distribution of a real streaming run,
    and point-lookup latency percentiles under concurrent merge load, with
    the measured clustered-vs-noop overhead of the index in the title."""
    series = {path.stem: load_series(path) for path in csvs}
    fig, (ax_rate, ax_dist, ax_lat) = plt.subplots(1, 3, figsize=(13, 4.2))

    if "apply_rate" in series:
        x_name, xs, ys = series["apply_rate"]
        ax_rate.plot(xs, [y / 1e6 for y in ys], color="tab:blue", linewidth=1.2)
        ax_rate.set_xlabel(x_name)
    ax_rate.set_ylabel("applies / µs")
    ax_rate.set_title("merge-apply rate over the match stream", fontsize=9)
    ax_rate.grid(True, alpha=0.3)

    if "cluster_size_distribution" in series:
        x_name, xs, ys = series["cluster_size_distribution"]
        ax_dist.bar(xs, ys, color="tab:green", width=0.8)
        ax_dist.set_xlabel("cluster size")
        if ys and max(ys) / max(min(y for y in ys if y > 0), 1) > 50:
            ax_dist.set_yscale("log")
    ax_dist.set_ylabel("clusters")
    ax_dist.set_title("cluster-size distribution (streaming run)", fontsize=9)
    ax_dist.grid(True, axis="y", alpha=0.3)

    if "query_latency_ns" in series:
        _, xs, ys = series["query_latency_ns"]
        labels = [f"p{int(x)}" for x in xs]
        ax_lat.bar(labels, [y / 1e3 for y in ys], color="tab:orange")
    ax_lat.set_ylabel("lookup latency (µs)")
    ax_lat.set_title("point queries under merge load", fontsize=9)
    ax_lat.grid(True, axis="y", alpha=0.3)

    title = name
    if "overhead_pct" in series:
        _, _, ys = series["overhead_pct"]
        if ys:
            title = f"{name} — clustered-vs-noop overhead {ys[-1]:.2f}% (contract < 5%)"
    fig.suptitle(title)
    fig.savefig(out, bbox_inches="tight")
    plt.close(fig)
    print(f"wrote {out}")


def main() -> int:
    if not EXPERIMENTS.is_dir():
        # Nothing to plot is not an error: CI invokes this unconditionally
        # and benches may not have run on this job.
        print(f"no {EXPERIMENTS} — run `cargo bench --workspace` first")
        return 0
    try:
        import matplotlib

        matplotlib.use("svg")
        import matplotlib.pyplot as plt
    except ImportError:
        plt = None
        print("matplotlib unavailable — printing summaries only", file=sys.stderr)

    for figure_dir in sorted(p for p in EXPERIMENTS.iterdir() if p.is_dir()):
        jsonl = figure_dir / "events.jsonl"
        if jsonl.is_file():
            events = load_events(jsonl)
            if plt is None or not events:
                summarize_events(figure_dir.name, events)
            else:
                plot_events(
                    figure_dir.name, events, EXPERIMENTS / f"{figure_dir.name}.events.svg", plt
                )
            continue
        csvs = sorted(figure_dir.glob("*.csv"))
        if not csvs:
            continue
        if plt is None:
            for path in csvs:
                x_name, xs, ys = load_series(path)
                final = ys[-1] if ys else float("nan")
                print(f"{figure_dir.name}/{path.stem}: final y={final:.3f} over {x_name}")
            continue
        if figure_dir.name == "shard_scaling":
            plot_shard_scaling(
                figure_dir.name, csvs, EXPERIMENTS / f"{figure_dir.name}.svg", plt
            )
            continue
        if figure_dir.name == "matcher_throughput":
            plot_matcher_throughput(
                figure_dir.name, csvs, EXPERIMENTS / f"{figure_dir.name}.svg", plt
            )
            continue
        if figure_dir.name == "metrics_overhead":
            plot_metrics_overhead(
                figure_dir.name, csvs, EXPERIMENTS / f"{figure_dir.name}.svg", plt
            )
            continue
        if figure_dir.name == "stage_a_throughput":
            plot_stage_a_throughput(
                figure_dir.name, csvs, EXPERIMENTS / f"{figure_dir.name}.svg", plt
            )
            continue
        if figure_dir.name == "cluster_throughput":
            plot_cluster_throughput(
                figure_dir.name, csvs, EXPERIMENTS / f"{figure_dir.name}.svg", plt
            )
            continue
        fig, ax = plt.subplots(figsize=(8, 5))
        x_label = "x"
        for path in csvs:
            x_name, xs, ys = load_series(path)
            x_label = x_name
            ax.plot(xs, ys, label=path.stem, linewidth=1.2)
        ax.set_xlabel(x_label)
        ax.set_ylabel("pair completeness")
        ax.set_title(figure_dir.name)
        ax.set_ylim(-0.02, 1.02)
        ax.grid(True, alpha=0.3)
        ax.legend(fontsize=6, ncol=2, loc="lower right")
        out = EXPERIMENTS / f"{figure_dir.name}.svg"
        fig.savefig(out, bbox_inches="tight")
        plt.close(fig)
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
