#!/usr/bin/env bash
# CI smoke test for the live telemetry subsystem.
#
# Runs the observed_stream example with a Prometheus endpoint on an
# OS-assigned port and a Perfetto trace file, scrapes /metrics while the
# endpoint is held open, and asserts:
#
#   * the scrape answers 200 with >= 10 metric families (# TYPE lines);
#   * core families (comparisons, matches, queue depth, recall) are present;
#   * the exported trace is valid chrome-trace JSON with at least one "X"
#     span for every pipeline phase.
#
# Usage: scripts/metrics_smoke.sh  (from the repo root; builds the example)
set -euo pipefail

cd "$(dirname "$0")/.."

log=$(mktemp)
trace=$(mktemp -u --suffix .json)
trap 'kill "$pid" 2>/dev/null || true; rm -f "$log" "$trace"' EXIT

cargo build --release --example observed_stream

./target/release/examples/observed_stream \
    --metrics-addr 127.0.0.1:0 \
    --trace-out "$trace" \
    --match-workers 2 \
    --hold-metrics-secs 30 >"$log" 2>&1 &
pid=$!

# The example prints "metrics: scrape with `curl http://ADDR/metrics`"
# once the endpoint is bound; poll the log for the assigned address.
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/.*scrape with `curl http:\/\/\([^/]*\)\/metrics`.*/\1/p' "$log" | head -n1)
    [ -n "$addr" ] && break
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "observed_stream exited before binding the metrics endpoint" >&2
        cat "$log" >&2
        exit 1
    fi
    sleep 0.2
done
if [ -z "$addr" ]; then
    echo "metrics endpoint address never appeared in the log" >&2
    cat "$log" >&2
    exit 1
fi
echo "metrics endpoint: $addr"

python3 - "$addr" <<'EOF'
import sys
import urllib.request

addr = sys.argv[1]
body = urllib.request.urlopen(f"http://{addr}/metrics", timeout=10).read().decode()
families = [l.split()[2] for l in body.splitlines() if l.startswith("# TYPE ")]
print(f"scraped {len(families)} metric families")
assert len(families) >= 10, f"expected >= 10 families, got {len(families)}: {families}"
for required in [
    "pier_comparisons_total",
    "pier_matches_confirmed_total",
    "pier_queue_depth",
    "pier_recall_estimate",
    "pier_phase_seconds",
]:
    assert required in families, f"missing family {required} in {families}"
EOF

wait "$pid"
echo "--- example tail ---"
tail -n 5 "$log"

python3 - "$trace" <<'EOF'
import json
import sys

with open(sys.argv[1]) as fh:
    trace = json.load(fh)
events = trace["traceEvents"]
spans = {}
for ev in events:
    if ev.get("ph") == "X":
        spans[ev["name"]] = spans.get(ev["name"], 0) + 1
print(f"trace: {len(events)} events, spans per phase: {spans}")
for phase in ["block", "weight", "prune", "classify"]:
    assert spans.get(phase, 0) >= 1, f"no '{phase}' span in the trace"
EOF

echo "metrics smoke passed"
