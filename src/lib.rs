//! # pier — Progressive Entity Resolution over Incremental Data
//!
//! A from-scratch Rust implementation of the PIER system (Gazzarri &
//! Herschel, EDBT 2023): schema-agnostic entity resolution over streaming
//! data that is simultaneously *incremental* (reuses all state across
//! increments) and *progressive* (executes the globally most promising
//! comparisons first, adaptively throttled by the matcher).
//!
//! ## Quick start
//!
//! ```
//! use pier::prelude::*;
//!
//! // A tiny Dirty-ER stream: two increments with one duplicate pair each.
//! let increments = vec![
//!     vec![
//!         EntityProfile::new(ProfileId(0), SourceId(0)).with("name", "Ada Lovelace"),
//!         EntityProfile::new(ProfileId(1), SourceId(0)).with("full_name", "Ada  Lovelace"),
//!     ],
//!     vec![
//!         EntityProfile::new(ProfileId(2), SourceId(0)).with("name", "Alan Turing"),
//!         EntityProfile::new(ProfileId(3), SourceId(0)).with("who", "Alan Turing"),
//!     ],
//! ];
//!
//! // Feed them through incremental blocking + the I-PES prioritizer.
//! let mut blocker = IncrementalBlocker::new(ErKind::Dirty);
//! let mut prioritizer = Ipes::new(PierConfig::default());
//! let matcher = JaccardMatcher::default();
//!
//! let mut matches = Vec::new();
//! for increment in &increments {
//!     let ids = blocker.process_increment(increment);
//!     prioritizer.on_increment(&blocker, &ids);
//!     // Between increments, execute the best pending comparisons.
//!     for cmp in prioritizer.next_batch(&blocker, 16) {
//!         let outcome = matcher.evaluate(MatchInput {
//!             profile_a: blocker.profile(cmp.a),
//!             tokens_a: blocker.tokens_of(cmp.a),
//!             profile_b: blocker.profile(cmp.b),
//!             tokens_b: blocker.tokens_of(cmp.b),
//!         });
//!         if outcome.is_match {
//!             matches.push(cmp);
//!         }
//!     }
//! }
//! assert_eq!(matches.len(), 2);
//! ```
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |---|---|
//! | [`types`] | entity profiles, tokenization, datasets, PC/PQ metrics |
//! | [`collections`] | bounded priority queues, lazy min-heap, scalable Bloom filter |
//! | [`blocking`] | incremental token blocking, purging, ghosting |
//! | [`metablocking`] | CBS & friends, blocking graph, WNP/CNP, I-WNP |
//! | [`matching`] | Jaccard / edit-distance matchers with cost reporting |
//! | [`core`] | the PIER framework + I-PCS, I-PBS, I-PES |
//! | [`shard`] | hash-partitioned parallel stage A with global-priority merge |
//! | [`baselines`] | batch ER, PBS, PPS(-GLOBAL/-LOCAL), I-BASE |
//! | [`datagen`] | seeded generators for the paper's four corpora |
//! | [`sim`] | virtual-clock pipeline simulator behind every figure |
//! | [`runtime`] | real multi-threaded streaming runtime |
//! | [`observe`] | zero-cost pipeline instrumentation, stats & JSONL export |
//! | [`metrics`] | live telemetry: lock-free registry, queue gauges, Prometheus endpoint, Perfetto traces |
//! | [`entity`] | incremental entity clustering: concurrent union-find index + live HTTP query endpoint |
//! | [`chaos`] | deterministic fault injection: seeded serializable fault plans for chaos testing |

#![warn(missing_docs)]

pub use pier_baselines as baselines;
pub use pier_blocking as blocking;
pub use pier_chaos as chaos;
pub use pier_collections as collections;
pub use pier_core as core;
pub use pier_datagen as datagen;
pub use pier_entity as entity;
pub use pier_matching as matching;
pub use pier_metablocking as metablocking;
pub use pier_metrics as metrics;
pub use pier_observe as observe;
pub use pier_runtime as runtime;
pub use pier_shard as shard;
pub use pier_sim as sim;
pub use pier_types as types;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use pier_baselines::{BatchEr, GsPsn, IBase, LsPsn, Pbs, Pps, PpsScope};
    pub use pier_blocking::{
        block_ghosting, block_stats, ghost_blocks, load_checkpoint, save_checkpoint,
        BlockCollection, BlockId, BlockStats, IncrementalBlocker, PurgePolicy,
    };
    pub use pier_chaos::{Fault, FaultKind, FaultPlan, FaultPoint};
    pub use pier_collections::{BoundedMaxHeap, LazyMinHeap, ScalableBloomFilter};
    pub use pier_core::{
        recommend, AdaptiveK, BlockCursor, ComparisonEmitter, Ipbs, Ipcs, Ipes, PierConfig,
        PierPipeline, Recommendation, Strategy,
    };
    pub use pier_datagen::{
        generate_bibliographic, generate_census, generate_dbpedia, generate_movies,
        BibliographicConfig, CensusConfig, DbpediaConfig, MoviesConfig, StandardDataset,
    };
    pub use pier_entity::{
        ClusterObserver, EntityCluster, EntityIndex, EntityLookup, EntityServer, EntitySnapshot,
        EntityStats, EntitySummary,
    };
    pub use pier_matching::{
        levenshtein_bounded, levenshtein_naive, ClassifiedMatch, CosineMatcher,
        EditDistanceMatcher, HybridMatcher, IncrementalClassifier, JaccardMatcher, MatchFunction,
        MatchInput, MatchOutcome, OracleMatcher,
    };
    pub use pier_metablocking::{iwnp, BlockingGraph, IwnpConfig, WeightingScheme};
    pub use pier_metrics::{
        MetricsObserver, MetricsRegistry, MetricsServer, QueueGauges, Telemetry, TraceObserver,
    };
    pub use pier_observe::ObserverSet;
    pub use pier_observe::{
        read_events, replay_match_count, replay_trajectory, Event, FanoutObserver, JsonlObserver,
        NoopObserver, Observer, Phase, PipelineObserver, ShardSnapshot, StatsObserver,
        StatsSnapshot, TimedEvent, WorkerSnapshot,
    };
    pub use pier_runtime::{
        chunk_ranges, default_match_workers, tokenize_increment, DeadLetter, DictionaryStats,
        IdleBackoff, MatchEvent, Pipeline, PipelineBuilder, RuntimeConfig, RuntimeReport,
        ShedPolicy, TokenizedIncrement, TokenizedProfile,
    };
    // The pre-`Pipeline` entry points stay importable for one release.
    #[allow(deprecated)]
    pub use pier_runtime::{
        run_streaming, run_streaming_observed, run_streaming_sharded,
        run_streaming_sharded_observed,
    };
    pub use pier_shard::{
        ProfileStore, RoutedProfile, ShardMerger, ShardRouter, ShardWorker, ShardedConfig,
        ShardedStageA,
    };
    pub use pier_sim::{
        arrival_schedule, arrival_times, ArrivalPattern, CostModel, MatcherMode, Method,
        PipelineSim, SimConfig, SimOutcome, StreamPlan,
    };
    pub use pier_types::{
        Comparison, Dataset, EntityProfile, ErKind, GroundTruth, Increment, IncrementalClusters,
        MatchLedger, PierError, ProfileId, ProgressTrajectory, SharedTokenDictionary, SourceId,
        TokenDictionary, TokenId, Tokenizer, WeightedComparison,
    };
}
