//! Integration tests of the four PIER conditions (Definition 3 of the
//! paper): improved early quality, comparable eventual quality,
//! incrementality, and globality — each checked end-to-end through the
//! simulator.

use pier::prelude::*;
use pier::sim::experiment::{run_method, StreamPlan};
use pier::sim::{Method, SimConfig};

fn movies() -> Dataset {
    generate_movies(&MoviesConfig {
        seed: 9,
        source0_size: 900,
        source1_size: 750,
        matches: 700,
    })
}

fn sim_config(budget: f64) -> SimConfig {
    SimConfig {
        time_budget: budget,
        cost: CostModel {
            stage_a_ops_per_sec: 1_000_000.0,
            matcher_ops_per_sec: 10_000_000.0,
        },
        ..SimConfig::default()
    }
}

#[test]
fn improved_early_quality_over_batch() {
    // |F_pier(D)[t]| > |F_batch(D)[t]| for a mid-run t (static data, ED).
    let d = movies();
    let cfg = sim_config(300.0);
    let matcher = EditDistanceMatcher::default();
    let batch = run_method(
        Method::Batch,
        &d,
        &StreamPlan::static_data(1),
        &matcher,
        &cfg,
        PierConfig::default(),
    );
    for method in Method::pier() {
        let pier = run_method(
            method,
            &d,
            &StreamPlan::static_data(100),
            &matcher,
            &cfg,
            PierConfig::default(),
        );
        // Probe a quarter of the way through the batch run.
        let t = batch.final_time * 0.25;
        assert!(
            pier.trajectory.pc_at_time(t) > batch.trajectory.pc_at_time(t),
            "{}: early quality {:.3} not better than batch {:.3} at t={t:.1}",
            method.name(),
            pier.trajectory.pc_at_time(t),
            batch.trajectory.pc_at_time(t)
        );
    }
}

#[test]
fn comparable_eventual_quality() {
    // F̄_pier(D_n) ≈ F_batch(D_n) when both run to completion.
    let d = movies();
    let cfg = sim_config(10_000.0);
    let matcher = JaccardMatcher::default();
    let batch = run_method(
        Method::Batch,
        &d,
        &StreamPlan::static_data(1),
        &matcher,
        &cfg,
        PierConfig::default(),
    );
    for method in Method::pier() {
        let pier = run_method(
            method,
            &d,
            &StreamPlan::static_data(100),
            &matcher,
            &cfg,
            PierConfig::default(),
        );
        assert!(
            pier.pc() >= batch.pc() - 0.03,
            "{}: eventual PC {:.3} not comparable to batch {:.3}",
            method.name(),
            pier.pc(),
            batch.pc()
        );
    }
}

#[test]
fn incrementality_beats_rebuilding() {
    // Processing one more increment must be much cheaper than batch
    // re-initialization over the whole dataset: compare the ops I-PES
    // spends on the last increment with a full PPS rebuild.
    let d = movies();
    let increments = d.into_increments(50).unwrap();
    let mut blocker = IncrementalBlocker::new(d.kind);
    let mut ipes = Ipes::new(PierConfig::default());
    let mut last_ipes_ops = 0;
    for inc in &increments {
        let ids = blocker.process_increment(&inc.profiles);
        ipes.on_increment(&blocker, &ids);
        last_ipes_ops = ipes.drain_ops();
    }
    let mut pps = Pps::new(PpsScope::Global);
    pps.on_increment(&blocker, &[ProfileId(0)]); // trigger full rebuild
    let rebuild_ops = pps.drain_ops();
    assert!(
        rebuild_ops > last_ipes_ops * 20,
        "incremental step ({last_ipes_ops} ops) should be far cheaper than a rebuild ({rebuild_ops} ops)"
    );
}

#[test]
fn globality_prioritizes_older_better_comparisons() {
    // A strong pair arrives early, then a weakly-connected increment: the
    // next emission must be the old strong pair, not something from the
    // newest increment.
    let mut blocker = IncrementalBlocker::new(ErKind::Dirty);
    let mut ipes = Ipes::new(PierConfig::default());

    // Increment 1: a strong duplicate pair (many shared tokens).
    let inc1 = vec![
        EntityProfile::new(ProfileId(0), SourceId(0)).with("t", "aaa bbb ccc ddd eee"),
        EntityProfile::new(ProfileId(1), SourceId(0)).with("t", "aaa bbb ccc ddd eee"),
    ];
    let ids = blocker.process_increment(&inc1);
    ipes.on_increment(&blocker, &ids);
    // The matcher is busy; nothing gets pulled yet.

    // Increment 2: two profiles sharing a single token with each other.
    let inc2 = vec![
        EntityProfile::new(ProfileId(2), SourceId(0)).with("t", "zzz filler1"),
        EntityProfile::new(ProfileId(3), SourceId(0)).with("t", "zzz filler2"),
    ];
    let ids = blocker.process_increment(&inc2);
    ipes.on_increment(&blocker, &ids);

    // Globality: the best remaining pair over ΔD_1 ⊎ ΔD_2 is the old one.
    let batch = ipes.next_batch(&blocker, 1);
    assert_eq!(batch, vec![Comparison::new(ProfileId(0), ProfileId(1))]);
}

#[test]
fn adaptive_k_tracks_matcher_speed() {
    // Under the same stream, the cheap matcher must allow more executed
    // comparisons within the stream window than the expensive one — the
    // observable effect of findK's adaptivity (§3.2).
    let d = movies();
    let cfg = sim_config(40.0);
    let plan = StreamPlan::streaming(200, 8.0); // 25s stream
    let js = run_method(
        Method::IPes,
        &d,
        &plan,
        &JaccardMatcher::default(),
        &cfg,
        PierConfig::default(),
    );
    let ed = run_method(
        Method::IPes,
        &d,
        &plan,
        &EditDistanceMatcher::default(),
        &cfg,
        PierConfig::default(),
    );
    assert!(
        js.comparisons > ed.comparisons,
        "JS ({}) should execute more comparisons than ED ({}) in the same window",
        js.comparisons,
        ed.comparisons
    );
}
