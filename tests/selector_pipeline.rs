//! End-to-end: strategy selection + the synchronous pipeline on all three
//! corpus shapes, with entity clusters as the final output.

use pier::prelude::*;

fn run_with_selector(dataset: &Dataset) -> (Strategy, usize, f64) {
    // Peek at the head of the stream to pick a strategy.
    let mut peek = IncrementalBlocker::new(dataset.kind);
    for p in dataset.profiles.iter().take(250) {
        peek.process_profile(p.clone());
    }
    let rec = recommend(&peek);

    // Drive the full stream through the synchronous pipeline.
    let mut pipeline = PierPipeline::new(
        dataset.kind,
        rec.strategy,
        PierConfig::default(),
        JaccardMatcher { threshold: 0.4 },
    );
    for inc in dataset.into_increments(10).unwrap() {
        pipeline.push_increment(&inc.profiles);
        pipeline.drain(5_000);
    }
    pipeline.drain_idle(500_000);

    // Quality against ground truth.
    let found = pipeline
        .duplicates()
        .iter()
        .filter(|m| dataset.ground_truth.is_match(m.pair))
        .count();
    let recall = found as f64 / dataset.ground_truth.len() as f64;
    (rec.strategy, pipeline.duplicates().len(), recall)
}

#[test]
fn census_pipeline_with_selected_strategy() {
    let d = generate_census(&CensusConfig {
        seed: 31,
        target_profiles: 600,
    });
    let (strategy, _, recall) = run_with_selector(&d);
    assert_eq!(strategy, Strategy::Pbs);
    assert!(recall > 0.8, "recall {recall}");
}

#[test]
fn movies_pipeline_with_selected_strategy() {
    let d = generate_movies(&MoviesConfig {
        seed: 31,
        source0_size: 300,
        source1_size: 250,
        matches: 230,
    });
    let (strategy, _, recall) = run_with_selector(&d);
    assert_eq!(strategy, Strategy::Pes);
    assert!(recall > 0.8, "recall {recall}");
}

#[test]
fn dbpedia_pipeline_with_selected_strategy() {
    let d = generate_dbpedia(&DbpediaConfig {
        seed: 31,
        source0_size: 200,
        source1_size: 360,
        matches: 150,
    });
    let (strategy, _, recall) = run_with_selector(&d);
    assert_eq!(strategy, Strategy::Pes);
    assert!(recall > 0.8, "recall {recall}");
}

#[test]
fn clusters_group_census_households() {
    // Census clusters have up to 4 members; the pipeline's cluster view
    // must reflect multi-member groups, not just pairs.
    let d = generate_census(&CensusConfig {
        seed: 32,
        target_profiles: 500,
    });
    let mut pipeline = PierPipeline::new(
        d.kind,
        Strategy::Pbs,
        PierConfig::default(),
        OracleMatcher::new(d.ground_truth.clone(), 1),
    );
    for inc in d.into_increments(5).unwrap() {
        pipeline.push_increment(&inc.profiles);
        pipeline.drain(100_000);
    }
    pipeline.drain_idle(1_000_000);
    let clusters = pipeline.clusters().clusters(2);
    assert!(!clusters.is_empty());
    let largest = clusters[0].len();
    assert!(
        (2..=4).contains(&largest),
        "census cluster sizes are 2–4, got {largest}"
    );
    // Every clustered pair must be transitively backed by ground truth —
    // with an oracle matcher, clusters are exactly the GT components.
    for cluster in &clusters {
        for pair in cluster.windows(2) {
            assert!(pipeline.clusters().same_entity(pair[0], pair[1]));
        }
    }
}
