//! Integration proof of the sharding correctness contract: with CBS
//! weighting and purging disabled, a fully drained sharded stage A emits
//! **exactly** the comparison set of the unsharded pipeline — the order
//! may differ only within equal-weight ties — and therefore reaches the
//! same final pair completeness. With a single shard the run degenerates
//! to the unsharded pipeline and even the emission *sequence* is
//! identical.

use std::collections::BTreeSet;

use pier::prelude::*;

fn corpus() -> Dataset {
    generate_bibliographic(&BibliographicConfig {
        seed: 7,
        source0_size: 120,
        source1_size: 100,
        matches: 80,
    })
}

fn pier_config() -> PierConfig {
    PierConfig {
        scheme: WeightingScheme::Cbs,
        ..PierConfig::default()
    }
}

/// Drains the unsharded reference pipeline to exhaustion, feeding the
/// corpus in `n_inc` increments and interleaving batches with ingestion
/// exactly like the sharded driver does.
fn run_unsharded(dataset: &Dataset, n_inc: usize) -> Vec<Comparison> {
    let mut blocker = IncrementalBlocker::with_config(
        dataset.kind,
        Tokenizer::default(),
        PurgePolicy::disabled(),
    );
    let mut emitter = Strategy::Pcs.build(pier_config());
    let mut out = Vec::new();
    for inc in dataset.clone().into_increments(n_inc).unwrap() {
        let ids = blocker.process_increment(&inc.profiles);
        emitter.on_increment(&blocker, &ids);
        out.extend(emitter.next_batch(&blocker, 64));
    }
    loop {
        let batch = emitter.next_batch(&blocker, 64);
        if !batch.is_empty() {
            out.extend(batch);
            continue;
        }
        emitter.drain_ops();
        emitter.on_increment(&blocker, &[]);
        if emitter.drain_ops() == 0 && !emitter.has_pending() {
            break;
        }
    }
    out
}

/// Drains a sharded stage A to exhaustion over the same increment schedule.
fn run_sharded(dataset: &Dataset, n_inc: usize, shards: u16) -> Vec<Comparison> {
    let mut stage = ShardedStageA::new(
        dataset.kind,
        ShardedConfig {
            shards,
            strategy: Strategy::Pcs,
            pier: pier_config(),
            purge_policy: PurgePolicy::disabled(),
        },
    );
    let mut out = Vec::new();
    for inc in dataset.clone().into_increments(n_inc).unwrap() {
        stage.on_increment(&inc.profiles);
        out.extend(stage.next_batch(64));
    }
    loop {
        let batch = stage.next_batch(64);
        if !batch.is_empty() {
            out.extend(batch);
            continue;
        }
        if !stage.tick() {
            break;
        }
    }
    out
}

fn final_pc(emitted: &[Comparison], gt: &GroundTruth) -> f64 {
    let mut ledger = MatchLedger::new();
    for &cmp in emitted {
        ledger.credit(gt, cmp);
    }
    ledger.len() as f64 / gt.len() as f64
}

#[test]
fn four_shards_emit_the_unsharded_comparison_set_and_pc() {
    let dataset = corpus();
    let unsharded = run_unsharded(&dataset, 8);
    let sharded = run_sharded(&dataset, 8, 4);

    // No pair is emitted twice (the shared Bloom CF removes cross-shard
    // copies), and the sets coincide exactly.
    let want: BTreeSet<Comparison> = unsharded.iter().copied().collect();
    let got: BTreeSet<Comparison> = sharded.iter().copied().collect();
    assert_eq!(want.len(), unsharded.len(), "unsharded emitted a duplicate");
    assert_eq!(got.len(), sharded.len(), "sharded emitted a duplicate");
    assert_eq!(got, want, "sharded and unsharded comparison sets differ");

    // Same emitted set ⇒ same final pair completeness — and on this corpus
    // the pipeline actually finds matches, so the equality is not vacuous.
    let pc_unsharded = final_pc(&unsharded, &dataset.ground_truth);
    let pc_sharded = final_pc(&sharded, &dataset.ground_truth);
    assert!(pc_unsharded > 0.5, "reference run found almost nothing");
    assert_eq!(pc_sharded, pc_unsharded);
}

#[test]
fn one_shard_reproduces_the_unsharded_sequence_exactly() {
    let dataset = corpus();
    let unsharded = run_unsharded(&dataset, 5);
    let sharded = run_sharded(&dataset, 5, 1);
    // N = 1 routes every token to shard 0, so the shard-local pipeline is
    // bit-identical to the unsharded one: same order, not just same set.
    assert_eq!(sharded, unsharded);
}
