//! Property-based fuzzing of every emitter over randomized tiny streams.
//!
//! For arbitrary profile contents, increment boundaries and ER kinds, all
//! ten algorithms must: terminate, never emit a pair twice, only emit
//! valid pairs, and stay deterministic.

use proptest::prelude::*;

// `pier::prelude::*` would also glob-import `pier::prelude::Strategy`
// (the PIER strategy enum), which collides with proptest's `Strategy`
// trait — import what the test needs explicitly instead.
use pier::prelude::{
    Comparison, EntityProfile, ErKind, IncrementalBlocker, PierConfig, ProfileId, SourceId,
};
use pier::sim::Method;

/// A randomized tiny corpus: each profile gets 1–3 values assembled from a
/// small token pool (so blocks actually form), plus increments cut at
/// random points.
#[derive(Debug, Clone)]
struct RandomStream {
    profiles: Vec<EntityProfile>,
    cuts: Vec<usize>,
    kind: ErKind,
}

fn random_stream() -> impl proptest::strategy::Strategy<Value = RandomStream> {
    let pool = prop::sample::select(vec![
        "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta", "iota", "kappa",
    ]);
    let value = prop::collection::vec(pool, 1..5).prop_map(|ws| ws.join(" "));
    let profile_values = prop::collection::vec(value, 1..4);
    let profiles = prop::collection::vec(profile_values, 2..24);
    (profiles, any::<bool>(), any::<u64>()).prop_map(|(raw, clean_clean, cut_seed)| {
        let kind = if clean_clean {
            ErKind::CleanClean
        } else {
            ErKind::Dirty
        };
        let profiles: Vec<EntityProfile> = raw
            .into_iter()
            .enumerate()
            .map(|(i, values)| {
                let source = if clean_clean { (i % 2) as u8 } else { 0 };
                let mut p = EntityProfile::new(ProfileId(i as u32), SourceId(source));
                for (j, v) in values.into_iter().enumerate() {
                    p = p.with(format!("a{j}"), v);
                }
                p
            })
            .collect();
        // Deterministic pseudo-random increment cuts.
        let mut cuts = Vec::new();
        let mut s = cut_seed;
        for i in 1..profiles.len() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if s >> 62 == 0 {
                cuts.push(i);
            }
        }
        RandomStream {
            profiles,
            cuts,
            kind,
        }
    })
}

fn drive(method: Method, stream: &RandomStream) -> Vec<Comparison> {
    let mut blocker = IncrementalBlocker::new(stream.kind);
    let mut emitter = method.build(PierConfig::default());
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut bounds: Vec<usize> = stream.cuts.clone();
    bounds.push(stream.profiles.len());
    for end in bounds {
        if end <= start {
            continue;
        }
        let ids = blocker.process_increment(&stream.profiles[start..end]);
        emitter.on_increment(&blocker, &ids);
        out.extend(emitter.next_batch(&blocker, 4));
        start = end;
    }
    // Drain with idle ticks, with a hard iteration bound as a liveness
    // guard (termination is part of the property).
    for _ in 0..10_000 {
        let batch = emitter.next_batch(&blocker, 64);
        if !batch.is_empty() {
            out.extend(batch);
            continue;
        }
        let _ = emitter.drain_ops();
        emitter.on_increment(&blocker, &[]);
        if emitter.drain_ops() == 0 && !emitter.has_pending() {
            return out;
        }
    }
    panic!("{} did not terminate", method.name());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_emitter_upholds_its_contract(stream in random_stream()) {
        for method in [
            Method::Batch,
            Method::Pbs,
            Method::PpsGlobal,
            Method::PpsLocal,
            Method::IBase,
            Method::IPcs,
            Method::IPbs,
            Method::IPes,
            Method::LsPsn,
            Method::GsPsn,
        ] {
            let emitted = drive(method, &stream);
            // No duplicates, only canonical and valid pairs.
            let mut seen = std::collections::HashSet::new();
            for c in &emitted {
                prop_assert!(seen.insert(*c), "{} repeated {c}", method.name());
                prop_assert!(c.a < c.b);
                prop_assert!(c.b.index() < stream.profiles.len());
                if stream.kind == ErKind::CleanClean {
                    prop_assert_ne!(
                        stream.profiles[c.a.index()].source,
                        stream.profiles[c.b.index()].source,
                        "{} emitted same-source pair",
                        method.name()
                    );
                }
            }
            // Determinism.
            let again = drive(method, &stream);
            prop_assert_eq!(emitted, again, "{} non-deterministic", method.name());
        }
    }

    #[test]
    fn pier_methods_cover_the_blocked_pair_space(stream in random_stream()) {
        // The union of generation + fallback must cover every pair sharing
        // a block (modulo Bloom false positives, negligible at this size).
        let mut blocker = IncrementalBlocker::new(stream.kind);
        for p in &stream.profiles {
            blocker.process_profile(p.clone());
        }
        let expected: std::collections::HashSet<Comparison> = {
            let mut s = std::collections::HashSet::new();
            for a in 0..stream.profiles.len() {
                for b in (a + 1)..stream.profiles.len() {
                    let (pa, pb) = (ProfileId(a as u32), ProfileId(b as u32));
                    if stream.kind == ErKind::CleanClean
                        && stream.profiles[a].source == stream.profiles[b].source
                    {
                        continue;
                    }
                    if blocker.collection().common_blocks(pa, pb) > 0 {
                        s.insert(Comparison::new(pa, pb));
                    }
                }
            }
            s
        };
        for method in Method::pier() {
            let emitted: std::collections::HashSet<Comparison> =
                drive(method, &stream).into_iter().collect();
            for c in &expected {
                prop_assert!(
                    emitted.contains(c),
                    "{} missed blocked pair {c}",
                    method.name()
                );
            }
        }
    }
}
