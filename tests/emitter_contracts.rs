//! Contract tests every comparison emitter must satisfy, run against all
//! ten algorithms (three PIER strategies and seven baselines).

use pier::prelude::*;
use pier::sim::Method;

fn all_methods() -> [Method; 10] {
    [
        Method::Batch,
        Method::Pbs,
        Method::PpsGlobal,
        Method::PpsLocal,
        Method::IBase,
        Method::IPcs,
        Method::IPbs,
        Method::IPes,
        Method::LsPsn,
        Method::GsPsn,
    ]
}

fn small_dataset(kind: ErKind) -> Dataset {
    match kind {
        ErKind::CleanClean => generate_movies(&MoviesConfig {
            seed: 77,
            source0_size: 150,
            source1_size: 120,
            matches: 110,
        }),
        ErKind::Dirty => generate_census(&CensusConfig {
            seed: 78,
            target_profiles: 300,
        }),
    }
}

/// Feeds a dataset increment by increment and drains with idle ticks,
/// returning every emitted comparison in order.
fn drive(method: Method, dataset: &Dataset, n_increments: usize) -> Vec<Comparison> {
    let mut blocker = IncrementalBlocker::new(dataset.kind);
    let mut emitter = method.build(PierConfig::default());
    let mut out = Vec::new();
    for inc in dataset.into_increments(n_increments).unwrap() {
        let ids = blocker.process_increment(&inc.profiles);
        emitter.on_increment(&blocker, &ids);
        // Interleave some pulls mid-stream like a real matcher would.
        out.extend(emitter.next_batch(&blocker, 8));
    }
    // Drain with idle ticks until the emitter is truly dry.
    loop {
        let batch = emitter.next_batch(&blocker, 64);
        if !batch.is_empty() {
            out.extend(batch);
            continue;
        }
        let _ = emitter.drain_ops();
        emitter.on_increment(&blocker, &[]);
        if emitter.drain_ops() == 0 && !emitter.has_pending() {
            break;
        }
    }
    out
}

#[test]
fn no_emitter_repeats_a_comparison() {
    for kind in [ErKind::CleanClean, ErKind::Dirty] {
        let dataset = small_dataset(kind);
        for method in all_methods() {
            let emitted = drive(method, &dataset, 6);
            let mut seen = std::collections::HashSet::new();
            for c in &emitted {
                assert!(
                    seen.insert(*c),
                    "{} repeated {c} on {:?}",
                    method.name(),
                    kind
                );
            }
        }
    }
}

#[test]
fn emitted_pairs_are_valid() {
    for kind in [ErKind::CleanClean, ErKind::Dirty] {
        let dataset = small_dataset(kind);
        for method in all_methods() {
            for c in drive(method, &dataset, 6) {
                assert!(c.a < c.b, "{}: non-canonical pair {c}", method.name());
                assert!(c.b.index() < dataset.len());
                if kind == ErKind::CleanClean {
                    assert_ne!(
                        dataset.profile(c.a).source,
                        dataset.profile(c.b).source,
                        "{}: same-source pair {c} in Clean-Clean ER",
                        method.name()
                    );
                }
            }
        }
    }
}

#[test]
fn emissions_are_deterministic() {
    let dataset = small_dataset(ErKind::CleanClean);
    for method in all_methods() {
        let a = drive(method, &dataset, 5);
        let b = drive(method, &dataset, 5);
        assert_eq!(a, b, "{} is non-deterministic", method.name());
    }
}

#[test]
fn pier_emitters_reach_the_blocking_ceiling() {
    // With unlimited pulls (ticks included), each PIER method must find
    // every ground-truth pair that shares at least one non-purged block.
    let dataset = small_dataset(ErKind::CleanClean);
    for method in Method::pier() {
        let emitted: std::collections::HashSet<Comparison> =
            drive(method, &dataset, 6).into_iter().collect();
        let mut missed = 0;
        for c in dataset.ground_truth.iter() {
            if !emitted.contains(&c) {
                missed += 1;
            }
        }
        // Bloom-filter false positives may drop a stray pair; allow 2%.
        assert!(
            missed * 50 <= dataset.ground_truth.len(),
            "{} missed {missed}/{} matches",
            method.name(),
            dataset.ground_truth.len()
        );
    }
}

#[test]
fn emitters_respect_k_where_adaptive() {
    let dataset = small_dataset(ErKind::CleanClean);
    // All PIER methods plus the batch schedulers respect k; I-BASE by
    // design does not (it flushes its whole backlog).
    for method in [
        Method::IPcs,
        Method::IPbs,
        Method::IPes,
        Method::Pbs,
        Method::PpsGlobal,
        Method::Batch,
    ] {
        let mut blocker = IncrementalBlocker::new(dataset.kind);
        let mut emitter = method.build(PierConfig::default());
        let ids = blocker.process_increment(&dataset.profiles);
        emitter.on_increment(&blocker, &ids);
        let batch = emitter.next_batch(&blocker, 3);
        assert!(
            batch.len() <= 3,
            "{} ignored k: got {}",
            method.name(),
            batch.len()
        );
    }
}
