//! End-to-end observability check: a streaming run instrumented with a
//! [`JsonlObserver`] must leave behind an event log from which the run's
//! progressive-recall story can be reconstructed *exactly* — the replayed
//! PC trajectory and match count agree with the final [`RuntimeReport`].

use std::sync::Arc;
use std::time::Duration;

use pier::prelude::*;

fn dataset() -> Dataset {
    generate_bibliographic(&BibliographicConfig {
        seed: 77,
        source0_size: 120,
        source1_size: 100,
        matches: 90,
    })
}

#[test]
fn jsonl_replay_agrees_with_runtime_report() {
    let d = dataset();
    let increments: Vec<Vec<EntityProfile>> = d
        .into_increments(8)
        .unwrap()
        .into_iter()
        .map(|i| i.profiles)
        .collect();

    // Unique run id so parallel test invocations don't share a log.
    let run_id = format!("observer-stream-test-{}", std::process::id());
    let jsonl = Arc::new(JsonlObserver::for_run(&run_id).expect("create events.jsonl"));
    let log_path = jsonl.path().to_path_buf();

    // The oracle classifies exactly the ground truth, so classified matches
    // and emitted ground-truth pairs coincide — replay must reproduce both.
    let matcher: Arc<dyn MatchFunction> = Arc::new(OracleMatcher::new(d.ground_truth.clone(), 8));
    let report = Pipeline::builder(d.kind)
        .config(RuntimeConfig {
            interarrival: Duration::from_millis(1),
            deadline: Duration::from_secs(60),
            ..RuntimeConfig::default()
        })
        .emitter(Box::new(Ipes::new(PierConfig::default())))
        .observe("jsonl", jsonl.clone())
        .build()
        .unwrap()
        .run(increments, matcher, |_| {});
    jsonl.flush().expect("flush event log");

    let events = read_events(&log_path).expect("read back events.jsonl");
    assert!(!events.is_empty(), "instrumented run must log events");

    // Distinct reported matches (the runtime's emitters never repeat a
    // pair, but dedup anyway to mirror replay_match_count's contract).
    let reported: std::collections::HashSet<Comparison> =
        report.matches.iter().map(|m| m.pair).collect();

    // 1. MatchConfirmed replay reproduces the report's match count.
    assert_eq!(
        replay_match_count(&events),
        reported.len(),
        "replayed MatchConfirmed events disagree with the RuntimeReport"
    );

    // 2. The replayed PC trajectory (ComparisonEmitted vs ground truth)
    //    credits exactly the matches the oracle confirmed.
    let trajectory = replay_trajectory(&events, &d.ground_truth);
    assert_eq!(
        trajectory.matches() as usize,
        reported.len(),
        "replayed PC trajectory disagrees with the RuntimeReport"
    );

    // 3. And it agrees with the report's own trajectory reconstruction.
    let from_report = report.progress_trajectory(&d.ground_truth);
    assert_eq!(trajectory.matches(), from_report.matches());
    assert_eq!(trajectory.total_matches(), from_report.total_matches());

    // 4. The stream found a solid majority of the true matches at all
    //    (sanity: the assertions above are not vacuous 0 == 0).
    assert!(
        trajectory.matches() as usize * 10 >= d.ground_truth.len() * 6,
        "only {}/{} matches found",
        trajectory.matches(),
        d.ground_truth.len()
    );

    // 5. Every pipeline stage left a trace in the log.
    let kind_of = |ev: &TimedEvent| match ev.event {
        Event::IncrementIngested { .. } => "inc",
        Event::ComparisonEmitted { .. } => "emit",
        Event::MatchConfirmed { .. } => "match",
        Event::PhaseTiming { .. } => "timing",
        Event::BlockBuilt { .. } => "block",
        _ => "other",
    };
    for expected in ["inc", "emit", "match", "timing", "block"] {
        assert!(
            events.iter().any(|e| kind_of(e) == expected),
            "no {expected} events in the log"
        );
    }

    std::fs::remove_dir_all(log_path.parent().unwrap()).ok();
}
