//! Property-based tests (proptest) on the core data structures and
//! invariants of the PIER stack.

use proptest::prelude::*;

use pier::prelude::*;
use pier::types::csv;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- comparisons -----------------------------------------------------

    #[test]
    fn comparison_is_canonical(a in 0u32..10_000, b in 0u32..10_000) {
        prop_assume!(a != b);
        let c1 = Comparison::new(ProfileId(a), ProfileId(b));
        let c2 = Comparison::new(ProfileId(b), ProfileId(a));
        prop_assert_eq!(c1, c2);
        prop_assert!(c1.a < c1.b);
        prop_assert_eq!(c1.key(), c2.key());
    }

    // ---- bounded heap ----------------------------------------------------

    #[test]
    fn bounded_heap_keeps_the_top_k(mut values in prop::collection::vec(-1000i64..1000, 1..200), cap in 1usize..50) {
        let mut heap = BoundedMaxHeap::new(cap);
        for &v in &values {
            heap.push(v);
        }
        let got = heap.into_sorted_vec_desc();
        // Reference: the k largest distinct values.
        values.sort_unstable();
        values.dedup();
        values.reverse();
        let expected: Vec<i64> = values.into_iter().take(cap).collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn bounded_heap_pop_is_sorted(values in prop::collection::vec(0u64..1_000_000, 0..128)) {
        let mut heap = BoundedMaxHeap::unbounded();
        for &v in &values {
            heap.push(v);
        }
        let mut prev = u64::MAX;
        while let Some(v) = heap.pop() {
            prop_assert!(v <= prev);
            prev = v;
        }
    }

    // ---- lazy min-heap ---------------------------------------------------

    #[test]
    fn lazy_heap_matches_reference(ops in prop::collection::vec((0u32..40, 0u64..1000), 1..300)) {
        let mut heap: LazyMinHeap<u64, u32> = LazyMinHeap::new();
        let mut reference: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        for &(v, k) in &ops {
            heap.set(v, k);
            reference.insert(v, k);
        }
        prop_assert_eq!(heap.len(), reference.len());
        if let Some((v, k)) = heap.peek_min() {
            let min = reference.values().copied().min().unwrap();
            prop_assert_eq!(k, min);
            prop_assert_eq!(reference[&v], k);
        }
    }

    // ---- bloom filter ----------------------------------------------------

    #[test]
    fn bloom_has_no_false_negatives(keys in prop::collection::hash_set(0u64..u64::MAX, 0..500)) {
        let mut f = ScalableBloomFilter::new(64, 0.01);
        for &k in &keys {
            f.insert(k);
        }
        for &k in &keys {
            prop_assert!(f.contains(k));
        }
    }

    // ---- similarity ------------------------------------------------------

    #[test]
    fn jaccard_bounds_and_symmetry(a in prop::collection::btree_set(0u32..200, 0..40),
                                   b in prop::collection::btree_set(0u32..200, 0..40)) {
        let ta: Vec<TokenId> = a.iter().map(|&i| TokenId(i)).collect();
        let tb: Vec<TokenId> = b.iter().map(|&i| TokenId(i)).collect();
        let s = pier::matching::similarity::jaccard_tokens(&ta, &tb);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert_eq!(s, pier::matching::similarity::jaccard_tokens(&tb, &ta));
        if !ta.is_empty() && ta == tb {
            prop_assert_eq!(s, 1.0);
        }
    }

    #[test]
    fn levenshtein_metric_properties(a in ".{0,20}", b in ".{0,20}", c in ".{0,12}") {
        use pier::matching::similarity::levenshtein;
        let dab = levenshtein(&a, &b);
        prop_assert_eq!(dab, levenshtein(&b, &a));
        prop_assert_eq!(levenshtein(&a, &a), 0);
        // Triangle inequality.
        prop_assert!(dab <= levenshtein(&a, &c) + levenshtein(&c, &b));
        // Length bound.
        let la = a.chars().count();
        let lb = b.chars().count();
        prop_assert!(dab <= la.max(lb));
        prop_assert!(dab >= la.abs_diff(lb));
    }

    // ---- tokenizer ------------------------------------------------------

    #[test]
    fn tokenizer_output_is_sorted_dedup_and_long_enough(text in ".{0,120}") {
        let t = Tokenizer::default();
        let p = EntityProfile::new(ProfileId(0), SourceId(0)).with("v", text);
        let tokens = t.profile_tokens(&p);
        prop_assert!(tokens.windows(2).all(|w| w[0] < w[1]));
        for tok in &tokens {
            prop_assert!(tok.chars().count() >= 2, "short token {tok:?}");
            prop_assert!(tok.chars().all(|c| c.is_alphanumeric()));
        }
    }

    // ---- block ghosting --------------------------------------------------

    #[test]
    fn ghosting_respects_threshold(sizes in prop::collection::vec(1usize..500, 1..30),
                                   beta in 0.05f64..1.0) {
        let blocks: Vec<(pier::blocking::BlockId, usize)> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| (pier::blocking::BlockId(i as u32), s))
            .collect();
        let kept = block_ghosting(&blocks, beta).unwrap();
        let min = *sizes.iter().min().unwrap();
        let threshold = min as f64 / beta;
        // Exactly the blocks within threshold survive.
        for (bid, size) in &blocks {
            let should_keep = *size as f64 <= threshold;
            prop_assert_eq!(kept.contains(bid), should_keep);
        }
        // The smallest block always survives.
        prop_assert!(!kept.is_empty());
    }

    // ---- dataset increments ----------------------------------------------

    #[test]
    fn increments_partition_profiles(n_profiles in 2usize..120, n_increments in 1usize..40) {
        prop_assume!(n_increments <= n_profiles);
        let profiles: Vec<EntityProfile> = (0..n_profiles)
            .map(|i| {
                EntityProfile::new(ProfileId(i as u32), SourceId((i % 2) as u8))
                    .with("v", format!("value{i}"))
            })
            .collect();
        let d = Dataset::new("p", ErKind::CleanClean, profiles, GroundTruth::new()).unwrap();
        let incs = d.into_increments(n_increments).unwrap();
        prop_assert_eq!(incs.len(), n_increments);
        let mut ids: Vec<u32> = incs
            .iter()
            .flat_map(|i| i.profiles.iter().map(|p| p.id.0))
            .collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..n_profiles as u32).collect::<Vec<_>>());
        let sizes: Vec<usize> = incs.iter().map(|i| i.len()).collect();
        prop_assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    // ---- CSV -------------------------------------------------------------

    #[test]
    fn csv_field_roundtrip(fields in prop::collection::vec(".{0,30}", 1..8)) {
        let mut buf = Vec::new();
        let refs: Vec<&str> = fields.iter().map(String::as_str).collect();
        csv::write_record(&mut buf, &refs).unwrap();
        let mut reader = csv::CsvReader::new(std::io::BufReader::new(&buf[..]));
        let parsed = reader.next_record().unwrap().unwrap();
        // CRLF normalization: bare \r at end of a line is stripped by the
        // reader only as part of a \r\n sequence inside quoted fields it is
        // preserved; we avoid trailing-\r inputs in this property.
        prop_assume!(!fields.iter().any(|f| f.ends_with('\r')));
        prop_assert_eq!(parsed, fields);
    }

    // ---- trajectory ------------------------------------------------------

    #[test]
    fn trajectory_is_monotone(events in prop::collection::vec((0.0f64..100.0, any::<bool>()), 0..200)) {
        let mut times: Vec<f64> = events.iter().map(|e| e.0).collect();
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut t = ProgressTrajectory::new(events.len().max(1) as u64);
        for (time, hit) in times.iter().zip(events.iter().map(|e| e.1)) {
            t.record(*time, hit);
        }
        t.finish(100.0);
        let pts = t.points();
        prop_assert!(pts.windows(2).all(|w| w[0].time <= w[1].time));
        prop_assert!(pts.windows(2).all(|w| w[0].matches <= w[1].matches));
        prop_assert!(t.pc() <= 1.0);
        let auc = t.auc_time(100.0);
        prop_assert!((0.0..=1.0).contains(&auc));
    }

    // ---- shard routing ---------------------------------------------------

    #[test]
    fn routed_token_ids_reunite_to_the_original_set(
        ids in prop::collection::btree_set(0u32..100_000, 0..150),
        shards in 1u16..12,
    ) {
        // A sorted-distinct token-id set, as produced by tokenize+intern.
        let tokens: Vec<TokenId> = ids.into_iter().map(TokenId).collect();
        let router = ShardRouter::new(shards);
        let by_shard = router.route_ids(&tokens);
        // Subsets are per-shard, ordered, non-empty, and every id went to
        // the shard its hash names.
        for (shard, subset) in &by_shard {
            prop_assert!(*shard < shards);
            prop_assert!(!subset.is_empty());
            prop_assert!(subset.windows(2).all(|w| w[0] < w[1]));
            for &t in subset {
                prop_assert_eq!(router.shard_of_id(t), *shard);
            }
        }
        prop_assert!(by_shard.windows(2).all(|w| w[0].0 < w[1].0));
        // Reuniting the subsets recovers exactly the original set: the
        // partition neither drops, duplicates, nor invents a token.
        let mut reunited: Vec<TokenId> = by_shard
            .into_iter()
            .flat_map(|(_, subset)| subset)
            .collect();
        reunited.sort_unstable();
        prop_assert_eq!(reunited, tokens);
    }

    // ---- weighting schemes -----------------------------------------------

    #[test]
    fn schemes_are_nonnegative_and_zero_on_no_overlap(
        cbs in 0u32..50, bx in 1usize..100, by in 1usize..100, total in 1usize..10_000, arcs in 0.0f64..10.0
    ) {
        prop_assume!((cbs as usize) <= bx.min(by));
        prop_assume!(total >= bx.max(by));
        for s in WeightingScheme::all() {
            let w = s.weigh(cbs, bx, by, total, arcs);
            prop_assert!(w >= 0.0, "{} gave {w}", s.name());
            if cbs == 0 {
                prop_assert_eq!(w, 0.0);
            }
        }
    }
}
