//! Dataset export/import and generator-level integration checks.

use pier::prelude::*;
use pier::types::csv;

#[test]
fn generated_dataset_roundtrips_through_csv_files() {
    let d = generate_movies(&MoviesConfig {
        seed: 101,
        source0_size: 120,
        source1_size: 100,
        matches: 90,
    });
    let dir = std::env::temp_dir().join(format!("pier-roundtrip-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ppath = dir.join("profiles.csv");
    let gpath = dir.join("matches.csv");
    {
        let mut pf = std::io::BufWriter::new(std::fs::File::create(&ppath).unwrap());
        csv::write_profiles(&mut pf, &d).unwrap();
        let mut gf = std::io::BufWriter::new(std::fs::File::create(&gpath).unwrap());
        csv::write_ground_truth(&mut gf, &d.ground_truth).unwrap();
    }
    let d2 = csv::read_dataset(
        "movies",
        ErKind::CleanClean,
        std::io::BufReader::new(std::fs::File::open(&ppath).unwrap()),
        std::io::BufReader::new(std::fs::File::open(&gpath).unwrap()),
    )
    .unwrap();
    assert_eq!(d2.profiles, d.profiles);
    assert_eq!(d2.ground_truth.len(), d.ground_truth.len());
    for c in d.ground_truth.iter() {
        assert!(d2.ground_truth.is_match(c));
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reimported_dataset_yields_identical_er_results() {
    let d = generate_bibliographic(&BibliographicConfig {
        seed: 55,
        source0_size: 100,
        source1_size: 90,
        matches: 80,
    });
    let mut pbuf = Vec::new();
    let mut gbuf = Vec::new();
    csv::write_profiles(&mut pbuf, &d).unwrap();
    csv::write_ground_truth(&mut gbuf, &d.ground_truth).unwrap();
    let d2 = csv::read_dataset(
        "bib",
        ErKind::CleanClean,
        std::io::BufReader::new(&pbuf[..]),
        std::io::BufReader::new(&gbuf[..]),
    )
    .unwrap();

    // Run the same ER pipeline on both and compare emissions.
    let run = |data: &Dataset| -> Vec<Comparison> {
        let mut blocker = IncrementalBlocker::new(data.kind);
        let mut e = Ipes::new(PierConfig::default());
        for inc in data.into_increments(5).unwrap() {
            let ids = blocker.process_increment(&inc.profiles);
            e.on_increment(&blocker, &ids);
        }
        let mut out = Vec::new();
        loop {
            let batch = e.next_batch(&blocker, 32);
            if !batch.is_empty() {
                out.extend(batch);
                continue;
            }
            e.drain_ops();
            e.on_increment(&blocker, &[]);
            if e.drain_ops() == 0 {
                break;
            }
        }
        out
    };
    assert_eq!(run(&d), run(&d2));
}

#[test]
fn all_standard_datasets_have_blocking_reachable_matches() {
    // Every ground-truth pair must share at least one token, or no
    // schema-agnostic blocking method could ever find it.
    for ds in StandardDataset::all() {
        // Down-scale for test speed where configs allow.
        let d = match ds {
            StandardDataset::DblpAcm => generate_bibliographic(&BibliographicConfig {
                seed: 7,
                source0_size: 260,
                source1_size: 230,
                matches: 220,
            }),
            StandardDataset::Movies => generate_movies(&MoviesConfig {
                seed: 7,
                source0_size: 300,
                source1_size: 250,
                matches: 230,
            }),
            StandardDataset::Census => generate_census(&CensusConfig {
                seed: 7,
                target_profiles: 500,
            }),
            StandardDataset::Dbpedia => generate_dbpedia(&DbpediaConfig {
                seed: 7,
                source0_size: 150,
                source1_size: 270,
                matches: 120,
            }),
        };
        let tok = Tokenizer::default();
        let mut unreachable = 0;
        for c in d.ground_truth.iter() {
            let ta = tok.profile_tokens(d.profile(c.a));
            let tb: std::collections::HashSet<String> =
                tok.profile_tokens(d.profile(c.b)).into_iter().collect();
            if !ta.iter().any(|t| tb.contains(t)) {
                unreachable += 1;
            }
        }
        assert_eq!(
            unreachable,
            0,
            "{}: {unreachable} matches share no token",
            ds.name()
        );
    }
}

#[test]
fn increment_split_preserves_ground_truth_reachability() {
    // Splitting must not drop or duplicate profiles, whatever the count.
    let d = generate_census(&CensusConfig {
        seed: 13,
        target_profiles: 333,
    });
    for n in [1usize, 2, 7, 50, 333] {
        let incs = d.into_increments(n).unwrap();
        let total: usize = incs.iter().map(|i| i.len()).sum();
        assert_eq!(total, d.len(), "split into {n}");
    }
}
