//! Checkpoint/restore across a stream interruption: a consumer that
//! crashes mid-stream and restores from its checkpoint must end with the
//! same duplicates as one that never stopped.

use pier::blocking::{load_checkpoint, save_checkpoint};
use pier::prelude::*;

fn dataset() -> Dataset {
    generate_census(&CensusConfig {
        seed: 17,
        target_profiles: 400,
    })
}

/// Drives a pipeline over `increments[from..]` given a blocker, returning
/// the set of duplicates found (classification-level, Jaccard).
fn consume(
    blocker: &mut IncrementalBlocker,
    increments: &[Increment],
    matcher: &JaccardMatcher,
) -> std::collections::HashSet<Comparison> {
    let mut emitter = Ipes::new(PierConfig::default());
    // Cold prioritizer start: replay existing profiles into the emitter
    // (checkpoint semantics — prioritization state is a rebuildable cache).
    let existing: Vec<ProfileId> = blocker.profiles().map(|p| p.id).collect();
    if !existing.is_empty() {
        emitter.on_increment(blocker, &existing);
    }
    let mut found = std::collections::HashSet::new();
    let mut drain = |emitter: &mut Ipes, blocker: &IncrementalBlocker| loop {
        let batch = emitter.next_batch(blocker, 64);
        if batch.is_empty() {
            emitter.drain_ops();
            emitter.on_increment(blocker, &[]);
            if emitter.drain_ops() == 0 {
                break;
            }
            continue;
        }
        for cmp in batch {
            let out = matcher.evaluate(MatchInput {
                profile_a: blocker.profile(cmp.a),
                tokens_a: blocker.tokens_of(cmp.a),
                profile_b: blocker.profile(cmp.b),
                tokens_b: blocker.tokens_of(cmp.b),
            });
            if out.is_match {
                found.insert(cmp);
            }
        }
    };
    for inc in increments {
        let ids = blocker.process_increment(&inc.profiles);
        emitter.on_increment(blocker, &ids);
    }
    drain(&mut emitter, blocker);
    found
}

#[test]
fn restore_mid_stream_matches_uninterrupted_run() {
    let d = dataset();
    let increments = d.into_increments(20).unwrap();
    let matcher = JaccardMatcher::default();
    let tokenizer = Tokenizer::default();
    let policy = PurgePolicy::default();

    // Reference: one uninterrupted consumer.
    let mut full_blocker = IncrementalBlocker::with_config(d.kind, tokenizer.clone(), policy);
    let reference = consume(&mut full_blocker, &increments, &matcher);
    assert!(!reference.is_empty());

    // Interrupted consumer: first half, checkpoint, "crash", restore,
    // second half.
    let mut first = IncrementalBlocker::with_config(d.kind, tokenizer.clone(), policy);
    let half_found = consume(&mut first, &increments[..10], &matcher);
    let mut checkpoint = Vec::new();
    save_checkpoint(&first, &tokenizer, &policy, &mut checkpoint).unwrap();
    drop(first); // the crash

    let mut restored = load_checkpoint(std::io::BufReader::new(&checkpoint[..])).unwrap();
    let second_found = consume(&mut restored, &increments[10..], &matcher);

    // The union of both phases equals the uninterrupted result: the second
    // phase's cold prioritizer re-emits old pairs, whose classification is
    // deterministic, so nothing is lost and nothing new is invented.
    let union: std::collections::HashSet<Comparison> =
        half_found.union(&second_found).copied().collect();
    assert_eq!(union, reference);
}

#[test]
fn restored_blocker_matches_original_block_structure() {
    let d = dataset();
    let tokenizer = Tokenizer::default();
    let policy = PurgePolicy::default();
    let mut b = IncrementalBlocker::with_config(d.kind, tokenizer.clone(), policy);
    for inc in d.into_increments(7).unwrap() {
        b.process_increment(&inc.profiles);
    }
    let mut buf = Vec::new();
    save_checkpoint(&b, &tokenizer, &policy, &mut buf).unwrap();
    let b2 = load_checkpoint(std::io::BufReader::new(&buf[..])).unwrap();

    assert_eq!(b2.profile_count(), b.profile_count());
    assert_eq!(b2.collection().block_count(), b.collection().block_count());
    assert_eq!(
        b2.collection().purged_count(),
        b.collection().purged_count()
    );
    assert_eq!(
        b2.collection().total_cardinality(),
        b.collection().total_cardinality()
    );
    // Per-profile CBS-relevant state identical.
    for p in b.profiles() {
        assert_eq!(
            b2.collection().blocks_of(p.id),
            b.collection().blocks_of(p.id)
        );
    }
}
