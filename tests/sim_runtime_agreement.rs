//! Cross-validation of the two drivers: the virtual-clock simulator and
//! the real threaded runtime must find the same matches when given ample
//! time — they drive the *same* components, differing only in how time
//! passes.

use std::sync::Arc;
use std::time::Duration;

use pier::prelude::*;
use pier::sim::experiment::{run_method, StreamPlan};
use pier::sim::{Method, SimConfig};

fn dataset() -> Dataset {
    generate_bibliographic(&BibliographicConfig {
        seed: 33,
        source0_size: 200,
        source1_size: 170,
        matches: 160,
    })
}

#[test]
fn simulator_and_runtime_find_the_same_matches() {
    let d = dataset();

    // Virtual-clock run (real classification so matches are comparable).
    let sim_out = run_method(
        Method::IPes,
        &d,
        &StreamPlan::static_data(10),
        &JaccardMatcher::default(),
        &SimConfig {
            time_budget: 1.0e6,
            matcher_mode: MatcherMode::Real,
            ..SimConfig::default()
        },
        PierConfig::default(),
    );

    // Real threaded run over the same increments.
    let increments: Vec<Vec<EntityProfile>> = d
        .into_increments(10)
        .unwrap()
        .into_iter()
        .map(|i| i.profiles)
        .collect();
    let report = Pipeline::builder(d.kind)
        .config(RuntimeConfig {
            interarrival: Duration::from_millis(1),
            deadline: Duration::from_secs(60),
            ..RuntimeConfig::default()
        })
        .emitter(Box::new(Ipes::new(PierConfig::default())))
        .build()
        .unwrap()
        .run(
            increments,
            Arc::new(JaccardMatcher::default()) as Arc<dyn MatchFunction>,
            |_| {},
        );

    // Same classified matches (order-independent).
    let runtime_matches: std::collections::HashSet<Comparison> =
        report.matches.iter().map(|m| m.pair).collect();
    assert_eq!(
        runtime_matches.len() as u64,
        sim_out.classified_matches,
        "runtime found {} matches, simulator {}",
        runtime_matches.len(),
        sim_out.classified_matches
    );

    // The Jaccard classifier at its default threshold recovers a solid
    // majority of the true matches (abbreviated authors and renamed venues
    // keep some pairs below threshold — a classification property, not an
    // emission one; the oracle test below checks emission exactly).
    let true_found = runtime_matches
        .iter()
        .filter(|c| d.ground_truth.is_match(**c))
        .count();
    assert!(
        true_found * 10 >= d.ground_truth.len() * 6,
        "only {true_found}/{} true matches",
        d.ground_truth.len()
    );
}

#[test]
fn runtime_oracle_matches_ground_truth_exactly() {
    let d = dataset();
    let increments: Vec<Vec<EntityProfile>> = d
        .into_increments(5)
        .unwrap()
        .into_iter()
        .map(|i| i.profiles)
        .collect();
    let report = Pipeline::builder(d.kind)
        .config(RuntimeConfig {
            interarrival: Duration::from_millis(1),
            deadline: Duration::from_secs(60),
            ..RuntimeConfig::default()
        })
        .emitter(Box::new(Ipes::new(PierConfig::default())))
        .build()
        .unwrap()
        .run(
            increments,
            Arc::new(OracleMatcher::new(d.ground_truth.clone(), 10)) as Arc<dyn MatchFunction>,
            |_| {},
        );
    // With an oracle, every confirmed match is a true match.
    for m in &report.matches {
        assert!(d.ground_truth.is_match(m.pair));
    }
    assert!(report.matches.len() * 10 >= d.ground_truth.len() * 9);
}
