//! Matching heterogeneous engineering data as it streams in.
//!
//! The paper's second motivating application (§1) is adaptive building and
//! construction: design components, pre-fabrication records and on-site
//! monitoring data describe *the same physical parts* in wildly different
//! semi-structured formats, and matches found early let the fabrication
//! line adjust in time. This example emulates that setting with the
//! highly heterogeneous dbpedia-like generator (per-profile attribute
//! sets, renamed attributes, long drifting descriptions — the same
//! structural challenges as IFC vs. AutomationML data) and shows how
//! schema-agnostic PIER finds cross-format matches without any mapping.
//!
//! Run with: `cargo run --release --example construction_site`

use pier::prelude::*;
use pier::sim::experiment::run_method;

fn main() {
    // Source 0 = design-side part descriptions; source 1 = site-side
    // records (renamed attributes, extra facts, drifted values).
    let dataset = generate_dbpedia(&DbpediaConfig {
        seed: 99,
        source0_size: 800,
        source1_size: 1400,
        matches: 650,
    });
    println!(
        "streaming {} part records from two schemas ({} true part links)",
        dataset.len(),
        dataset.ground_truth.len()
    );

    // Peek at the heterogeneity: a matched pair uses different attributes.
    let pair = dataset.ground_truth.iter().next().expect("has matches");
    let (a, b) = (dataset.profile(pair.a), dataset.profile(pair.b));
    println!("\nexample matched pair across schemas:");
    println!(
        "  {}: {} attributes, e.g. `{}`",
        a.id,
        a.attributes.len(),
        a.attributes[1].name
    );
    println!(
        "  {}: {} attributes, e.g. `{}`",
        b.id,
        b.attributes.len(),
        b.attributes[1].name
    );

    // Monitoring data streams in bursts; matching (edit distance over long
    // descriptions) is the bottleneck — exactly where adaptive K helps.
    let plan = StreamPlan::streaming(100, 8.0);
    let matcher = EditDistanceMatcher::default();
    let sim = SimConfig {
        time_budget: 180.0,
        ..SimConfig::default()
    };

    println!(
        "\n{:<8} {:>10} {:>10} {:>12}",
        "method", "PC@30s", "PC final", "time to 50%"
    );
    for method in [Method::IBase, Method::IPes] {
        let out = run_method(
            method,
            &dataset,
            &plan,
            &matcher,
            &sim,
            PierConfig::default(),
        );
        println!(
            "{:<8} {:>10.3} {:>10.3} {:>12}",
            out.name,
            out.trajectory.pc_at_time(30.0),
            out.pc(),
            out.trajectory
                .time_to_pc(0.5)
                .map_or("never".to_string(), |t| format!("{t:.1}s")),
        );
    }
    println!("\nEarly links mean the pre-fabrication line can react while parts are still queued.");
}
