//! Real-time duplicate detection on a person-record stream.
//!
//! The paper motivates PIER with anti-financial-crime applications: the
//! earlier a new record is linked to an existing identity, the earlier an
//! illicit pattern can be stopped. This example replays a Febrl-style
//! census stream through the **real multi-threaded runtime** (source →
//! blocking → I-PES prioritization → edit-distance matching) and prints
//! identity matches the moment they are confirmed.
//!
//! Run with: `cargo run --release --example fraud_stream`

use std::sync::Arc;
use std::time::Duration;

use pier::prelude::*;

fn main() {
    let dataset = generate_census(&CensusConfig {
        seed: 7,
        target_profiles: 2000,
    });
    println!(
        "streaming {} person records ({} true identity links)...\n",
        dataset.len(),
        dataset.ground_truth.len()
    );
    let increments: Vec<Vec<EntityProfile>> = dataset
        .into_increments(100)
        .expect("valid split")
        .into_iter()
        .map(|inc| inc.profiles)
        .collect();

    let emitter = Box::new(Ipes::new(PierConfig::default()));
    let matcher: Arc<dyn MatchFunction> = Arc::new(EditDistanceMatcher::default());
    let config = RuntimeConfig {
        interarrival: Duration::from_millis(5),
        deadline: Duration::from_secs(30),
        ..RuntimeConfig::default()
    };

    let mut shown = 0usize;
    let report = run_streaming(
        ErKind::Dirty,
        increments,
        emitter,
        matcher,
        config,
        |event| {
            shown += 1;
            if shown <= 15 {
                println!(
                    "  [{:8.3}s] ALERT: {} and {} look like the same person (sim {:.2})",
                    event.at.as_secs_f64(),
                    event.pair.a,
                    event.pair.b,
                    event.similarity
                );
            } else if shown == 16 {
                println!("  ... (suppressing further alerts)");
            }
        },
    );

    let gt = &dataset.ground_truth;
    let true_links = report
        .matches
        .iter()
        .filter(|m| gt.is_match(m.pair))
        .count();
    println!(
        "\nprocessed {} comparisons in {:.2}s wall-clock",
        report.comparisons,
        report.elapsed.as_secs_f64()
    );
    println!(
        "confirmed {} identity links ({} correct, precision {:.2})",
        report.matches.len(),
        true_links,
        true_links as f64 / report.matches.len().max(1) as f64
    );
    println!(
        "links confirmed within the first second: {}",
        report.matches_within(Duration::from_secs(1))
    );
}
