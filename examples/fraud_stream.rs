//! Real-time duplicate detection on a person-record stream.
//!
//! The paper motivates PIER with anti-financial-crime applications: the
//! earlier a new record is linked to an existing identity, the earlier an
//! illicit pattern can be stopped. This example replays a Febrl-style
//! census stream through the **real multi-threaded runtime** (source →
//! blocking → I-PES prioritization → edit-distance matching) and prints
//! identity matches the moment they are confirmed.
//!
//! The run maintains a live [`EntityIndex`]: every confirmed match folds
//! into the evolving partition of records into *identities*, and the
//! end-of-run summary reports resolved identities (cluster count, the
//! largest clusters) instead of raw pair counts.
//!
//! Run with: `cargo run --release --example fraud_stream`

use std::sync::Arc;
use std::time::Duration;

use pier::prelude::*;

fn main() {
    let dataset = generate_census(&CensusConfig {
        seed: 7,
        target_profiles: 2000,
    });
    println!(
        "streaming {} person records ({} true identity links)...\n",
        dataset.len(),
        dataset.ground_truth.len()
    );
    let increments: Vec<Vec<EntityProfile>> = dataset
        .into_increments(100)
        .expect("valid split")
        .into_iter()
        .map(|inc| inc.profiles)
        .collect();

    let emitter = Box::new(Ipes::new(PierConfig::default()));
    let matcher: Arc<dyn MatchFunction> = Arc::new(EditDistanceMatcher::default());
    // The entity index turns the pairwise match stream into identities,
    // queryable at any moment while the stream is still running.
    let identities = EntityIndex::shared();
    let config = RuntimeConfig {
        interarrival: Duration::from_millis(5),
        deadline: Duration::from_secs(30),
        entities: Some(Arc::clone(&identities)),
        ..RuntimeConfig::default()
    };

    let mut shown = 0usize;
    let report = Pipeline::builder(ErKind::Dirty)
        .config(config)
        .emitter(emitter)
        .build()
        .expect("valid fraud-stream config")
        .run(increments, matcher, |event| {
            shown += 1;
            if shown <= 15 {
                println!(
                    "  [{:8.3}s] ALERT: {} and {} look like the same person (sim {:.2})",
                    event.at.as_secs_f64(),
                    event.pair.a,
                    event.pair.b,
                    event.similarity
                );
            } else if shown == 16 {
                println!("  ... (suppressing further alerts)");
            }
        });

    let gt = &dataset.ground_truth;
    let true_links = report
        .matches
        .iter()
        .filter(|m| gt.is_match(m.pair))
        .count();
    println!(
        "\nprocessed {} comparisons in {:.2}s wall-clock (link precision {:.2})",
        report.comparisons,
        report.elapsed.as_secs_f64(),
        true_links as f64 / report.matches.len().max(1) as f64
    );
    println!(
        "links confirmed within the first second: {}",
        report.matches_within(Duration::from_secs(1))
    );

    // The end-of-run entity summary: what the stream resolved *to*.
    let summary = report.entity_summary.expect("entity index attached");
    let snapshot = identities.snapshot();
    let top_sizes: Vec<usize> = snapshot.largest.iter().map(|c| c.size).collect();
    println!("\n=== resolved identities ===");
    println!(
        "identities        {} multi-record ({} records linked, {} singletons)",
        summary.clusters, summary.matched_profiles, summary.singletons
    );
    println!(
        "cluster sizes     max {} / mean {:.2}, top-5 {:?}",
        summary.max_size, summary.mean_size, top_sizes
    );
    for cluster in snapshot.largest.iter().take(3) {
        let shown: Vec<String> = cluster
            .members
            .iter()
            .take(8)
            .map(|p| p.to_string())
            .collect();
        let more = cluster.size.saturating_sub(shown.len());
        let suffix = if more > 0 {
            format!(", +{more} more")
        } else {
            String::new()
        };
        println!(
            "largest identity  entity {} = records [{}{suffix}]",
            cluster.entity,
            shown.join(", ")
        );
    }
}
