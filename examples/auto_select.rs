//! Automatic strategy selection — the paper's future work in action.
//!
//! Peeks at the first increments of three very different streams and lets
//! [`pier::core::selector`] choose between the block-centric and
//! entity-centric PIER strategies, then validates the choice by running
//! both on the full stream.
//!
//! Run with: `cargo run --release --example auto_select`

use pier::prelude::*;
use pier::sim::experiment::run_method;

fn main() {
    let datasets = vec![
        generate_census(&CensusConfig {
            seed: 42,
            target_profiles: 4000,
        }),
        generate_movies(&MoviesConfig {
            seed: 42,
            source0_size: 2200,
            source1_size: 1800,
            matches: 1700,
        }),
        generate_dbpedia(&DbpediaConfig {
            seed: 42,
            source0_size: 1500,
            source1_size: 2700,
            matches: 1100,
        }),
    ];

    for dataset in &datasets {
        // Peek: ingest the first ~300 profiles, as a stream consumer would
        // after the first increments.
        let mut peek = IncrementalBlocker::new(dataset.kind);
        for p in dataset.profiles.iter().take(300) {
            peek.process_profile(p.clone());
        }
        let rec = recommend(&peek);
        println!("dataset `{}`:", dataset.name);
        println!(
            "  recommendation: {} — {}",
            rec.strategy.name(),
            rec.rationale
        );

        // Validate: run both candidates on a fast stream with ED matching
        // and compare early quality.
        let plan = StreamPlan::streaming(200, 32.0);
        let sim = SimConfig {
            time_budget: 120.0,
            cost: CostModel {
                stage_a_ops_per_sec: 1_000_000.0,
                matcher_ops_per_sec: 10_000_000.0,
            },
            ..SimConfig::default()
        };
        let matcher = EditDistanceMatcher::default();
        for method in [Method::IPbs, Method::IPes] {
            let out = run_method(
                method,
                dataset,
                &plan,
                &matcher,
                &sim,
                PierConfig::default(),
            );
            println!(
                "  {:<6} AUC={:.3} PC@30s={:.3} PC final={:.3}",
                out.name,
                out.trajectory.auc_time(120.0),
                out.trajectory.pc_at_time(30.0),
                out.pc()
            );
        }
        println!();
    }
}
