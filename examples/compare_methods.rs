//! Side-by-side comparison of all eight algorithms on a fast stream.
//!
//! Reproduces, in miniature, the comparative story of the paper's §7.3:
//! straightforward progressive adaptations (PPS-GLOBAL / PPS-LOCAL) fail on
//! streams, the incremental baseline I-BASE lacks early quality and stalls
//! under an expensive matcher, and the PIER algorithms deliver both early
//! and eventual quality.
//!
//! Run with: `cargo run --release --example compare_methods`

use pier::prelude::*;
use pier::sim::experiment::run_method;

fn main() {
    let dataset = generate_movies(&MoviesConfig {
        seed: 11,
        source0_size: 2400,
        source1_size: 2000,
        matches: 1900,
    });
    // 200 increments at 16 ΔD/s: the stream takes 12.5s to arrive.
    let plan = StreamPlan::streaming(200, 16.0);
    let budget = 120.0;

    for (label, matcher) in [
        ("JS (cheap matcher)", MatcherChoice::Js),
        ("ED (expensive matcher)", MatcherChoice::Ed),
    ] {
        println!("== {label}, 200 increments @ 16 ΔD/s, {budget:.0}s budget ==");
        println!(
            "{:<12} {:>8} {:>8} {:>8} {:>9} {:>10} {:>10}",
            "method", "PC@15s", "PC@60s", "PC final", "AUC", "cmp", "consumed"
        );
        for method in [
            Method::PpsLocal,
            Method::PpsGlobal,
            Method::Pbs,
            Method::LsPsn,
            Method::GsPsn,
            Method::IBase,
            Method::IPcs,
            Method::IPbs,
            Method::IPes,
        ] {
            let sim = SimConfig {
                time_budget: budget,
                ..SimConfig::default()
            };
            let out = match matcher {
                MatcherChoice::Js => run_method(
                    method,
                    &dataset,
                    &plan,
                    &JaccardMatcher::default(),
                    &sim,
                    PierConfig::default(),
                ),
                MatcherChoice::Ed => run_method(
                    method,
                    &dataset,
                    &plan,
                    &EditDistanceMatcher::default(),
                    &sim,
                    PierConfig::default(),
                ),
            };
            let t = &out.trajectory;
            println!(
                "{:<12} {:>8.3} {:>8.3} {:>8.3} {:>9.3} {:>10} {:>10}",
                out.name,
                t.pc_at_time(15.0),
                t.pc_at_time(60.0),
                out.pc(),
                t.auc_time(budget),
                out.comparisons,
                out.consumed_at
                    .map_or("—".to_string(), |c| format!("{c:.1}s")),
            );
        }
        println!();
    }
}

enum MatcherChoice {
    Js,
    Ed,
}
