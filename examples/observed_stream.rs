//! Live observability of a streaming ER run.
//!
//! Builds one [`Pipeline`] — whatever the flags say — and attaches a
//! [`StatsObserver`] sink that a monitor thread snapshots *while the
//! pipeline runs*: increments ingested, blocks built/purged, comparisons
//! emitted, matches confirmed, the live pair-completeness timeline, and
//! per-phase latency percentiles. At startup the example prints the
//! composed observer list (`observers: [...]`) — the caller's labelled
//! sinks plus the implicit `metrics` / `entities` sinks the configuration
//! adds.
//!
//! Run with: `cargo run --release --example observed_stream`
//!
//! Pass `--shards N` to run the hash-partitioned stage A instead
//! (`PipelineBuilder::sharded` with `N` shard threads); the final
//! snapshot then includes a per-shard work breakdown.
//!
//! Pass `--intern-stats` to print the shared token dictionary's footprint
//! after the run: distinct tokens interned, token occurrences streamed,
//! and the bytes the id-based data path saved over shipping an owned
//! `String` per occurrence.
//!
//! Pass `--stage-a-stats` to print the end-of-run occupancy of the
//! stage-A hot-path structures: the dense block slab (slots allocated vs
//! blocks created) and the epoch-stamped I-WNP scratch accumulator (slot
//! capacity and the largest single-arrival neighborhood it accumulated).
//!
//! Pass `--match-workers N` to fan stage-B matcher evaluations out over
//! `N` parallel workers (default: the machine's available parallelism;
//! `1` reproduces the sequential executor exactly). The final snapshot
//! then includes a per-worker classify breakdown.
//!
//! Pass `--metrics-addr HOST:PORT` (port 0 for an OS-assigned port) to
//! attach the live telemetry subsystem and serve a Prometheus text
//! endpoint while the pipeline runs — the example prints a one-line
//! scrape hint and a final gauge snapshot. Add `--hold-metrics-secs N`
//! to keep the endpoint alive after the run until it has served at least
//! one scrape (or `N` seconds pass), which makes external scrapers
//! race-free.
//!
//! Pass `--trace-out FILE` to export a chrome-trace/Perfetto JSON of the
//! run's phase timings (openable at <https://ui.perfetto.dev>).
//!
//! Pass `--entity-addr HOST:PORT` (port 0 for an OS-assigned port) to
//! maintain a live [`EntityIndex`] over the confirmed-match stream and
//! serve it over HTTP while the pipeline runs (`GET /entity/{id}`,
//! `GET /clusters`, `GET /healthz`). The example prints a one-line query
//! hint and a final entity summary. `--hold-metrics-secs N` also keeps
//! this endpoint alive until it has served at least one request.
//!
//! Pass `--fault-plan FILE` to arm deterministic chaos injection from a
//! JSON [`FaultPlan`] (see `FaultPlan::to_json` for the format), and/or
//! `--chaos-seed N` to override the plan's seed (alone, it arms an
//! empty plan — every chaos check taken, no fault fired). The final
//! report then prints the supervision ledger: dead letters, worker
//! restarts, and shed comparisons.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pier::prelude::*;

fn parse_shards() -> Option<u16> {
    let args: Vec<String> = std::env::args().collect();
    let pos = args.iter().position(|a| a == "--shards")?;
    let n = args
        .get(pos + 1)
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .expect("--shards takes a positive shard count");
    Some(n)
}

fn parse_intern_stats() -> bool {
    std::env::args().any(|a| a == "--intern-stats")
}

fn parse_stage_a_stats() -> bool {
    std::env::args().any(|a| a == "--stage-a-stats")
}

fn parse_match_workers() -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    let pos = args.iter().position(|a| a == "--match-workers")?;
    let n = args
        .get(pos + 1)
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .expect("--match-workers takes a positive worker count");
    Some(n)
}

fn parse_value_arg(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    let pos = args.iter().position(|a| a == flag)?;
    Some(
        args.get(pos + 1)
            .unwrap_or_else(|| panic!("{flag} takes a value"))
            .clone(),
    )
}

fn main() {
    let shards = parse_shards();
    let intern_stats = parse_intern_stats();
    let stage_a_stats = parse_stage_a_stats();
    let match_workers = parse_match_workers();
    let metrics_addr = parse_value_arg("--metrics-addr");
    let entity_addr = parse_value_arg("--entity-addr");
    let trace_out = parse_value_arg("--trace-out");
    let hold_metrics_secs: u64 = parse_value_arg("--hold-metrics-secs")
        .map(|v| v.parse().expect("--hold-metrics-secs takes seconds"))
        .unwrap_or(0);
    // Chaos flags: a JSON fault plan, an optional seed override, or a
    // seed alone (arms the chaos checks without firing any fault).
    let fault_plan = parse_value_arg("--fault-plan").map(|path| {
        let json = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("--fault-plan {path} is unreadable: {e}"));
        FaultPlan::from_json(&json).unwrap_or_else(|e| panic!("--fault-plan {path}: {e}"))
    });
    let chaos_seed: Option<u64> =
        parse_value_arg("--chaos-seed").map(|v| v.parse().expect("--chaos-seed takes an integer"));
    let fault_plan = match (fault_plan, chaos_seed) {
        (Some(mut plan), Some(seed)) => {
            plan.seed = seed;
            Some(plan)
        }
        (plan @ Some(_), None) => plan,
        (None, Some(seed)) => Some(FaultPlan::empty(seed)),
        (None, None) => None,
    };
    if let Some(plan) = &fault_plan {
        println!(
            "chaos: armed with {} fault(s), seed {}",
            plan.faults.len(),
            plan.seed
        );
    }
    // The bibliographic corpus: two clean sources with known duplicates.
    let dataset = generate_bibliographic(&BibliographicConfig {
        seed: 42,
        source0_size: 600,
        source1_size: 500,
        matches: 450,
    });
    let increments: Vec<Vec<EntityProfile>> = dataset
        .into_increments(20)
        .unwrap()
        .into_iter()
        .map(|i| i.profiles)
        .collect();
    println!(
        "streaming {} profiles in {} increments ({} true matches)",
        increments.iter().map(Vec::len).sum::<usize>(),
        increments.len(),
        dataset.ground_truth.len()
    );

    // A StatsObserver with the ground truth keeps a live PC timeline.
    let stats = Arc::new(StatsObserver::with_ground_truth(
        dataset.ground_truth.clone(),
    ));

    // Monitor thread: print a progress line every 20 ms until the run ends.
    let done = Arc::new(AtomicBool::new(false));
    let monitor = {
        let stats = Arc::clone(&stats);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            while !done.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(20));
                let s = stats.snapshot();
                println!(
                    "[{:6.3}s] inc={:<3} blocks={:<5} emitted={:<6} matches={:<4} pc={}",
                    s.uptime_secs,
                    s.increments,
                    s.blocks_built,
                    s.comparisons_emitted,
                    s.matches_confirmed,
                    s.pc.map_or("n/a".into(), |pc| format!("{pc:.3}")),
                );
            }
        })
    };

    // Live telemetry: a Prometheus endpoint over a shared registry, and a
    // Perfetto trace of the phase timings, both optional.
    let telemetry = metrics_addr
        .is_some()
        .then(|| Telemetry::new().with_ground_truth(dataset.ground_truth.clone()));
    let mut server = match (&metrics_addr, &telemetry) {
        (Some(addr), Some(t)) => {
            let server = MetricsServer::serve(addr.as_str(), Arc::clone(t.registry()))
                .expect("--metrics-addr binds");
            println!(
                "metrics: scrape with `curl http://{}/metrics`",
                server.local_addr()
            );
            Some(server)
        }
        _ => None,
    };
    // Live entity clustering: a union-find index over the confirmed-match
    // stream; `serve_entities` below exposes it over HTTP while the
    // pipeline runs.
    let entities = entity_addr.as_ref().map(|_| EntityIndex::shared());
    let trace = trace_out
        .map(|path| Arc::new(TraceObserver::create(&path).expect("--trace-out file is writable")));

    let matcher = Arc::new(JaccardMatcher::default()) as Arc<dyn MatchFunction>;
    let mut runtime_config = RuntimeConfig {
        interarrival: Duration::from_millis(10),
        deadline: Duration::from_secs(30),
        telemetry: telemetry.clone(),
        entities: entities.clone(),
        fault_plan,
        ..RuntimeConfig::default()
    };
    if let Some(n) = match_workers {
        runtime_config.match_workers = n;
    }
    println!("stage-B match workers: {}", runtime_config.match_workers);

    // One construction path for every flag combination: the builder picks
    // the stage-A topology, composes the labelled observer sinks, and
    // binds the entity endpoint.
    let mut builder = Pipeline::builder(dataset.kind)
        .config(runtime_config)
        .observe("stats", stats.clone());
    if let Some(trace) = &trace {
        builder = builder.observe("trace", Arc::clone(trace) as Arc<dyn PipelineObserver>);
    }
    builder = match shards {
        Some(n) => {
            println!("running hash-partitioned stage A with {n} shards");
            builder.sharded(ShardedConfig {
                shards: n,
                ..ShardedConfig::default()
            })
        }
        None => builder.emitter(Box::new(Ipes::new(PierConfig::default()))),
    };
    if let Some(addr) = &entity_addr {
        builder = builder.serve_entities(addr.as_str());
    }
    let mut pipeline = builder.build().expect("observed_stream flags validate");
    println!("observers: [{}]", pipeline.observer_labels().join(", "));
    // Detach the entity server so it can outlive the run for the hold
    // contract below.
    let mut entity_server = pipeline.take_entity_server();
    if let Some(server) = &entity_server {
        println!(
            "entities: query with `curl http://{}/clusters`",
            server.local_addr()
        );
    }

    let report = pipeline.run(increments, matcher, |_| {});
    done.store(true, Ordering::Relaxed);
    monitor.join().unwrap();

    if let Some(trace) = &trace {
        match trace.finalize() {
            Ok(path) => println!(
                "trace: {} events -> {} (open at https://ui.perfetto.dev)",
                trace.events_recorded(),
                path.display()
            ),
            Err(e) => eprintln!("trace export failed: {e}"),
        }
    }

    if let (Some(server), Some(telemetry)) = (&mut server, &telemetry) {
        // Hold the endpoint for external scrapers (CI smoke) before the
        // final gauge snapshot and shutdown.
        let hold = Duration::from_secs(hold_metrics_secs);
        let held = Instant::now();
        while server.requests_served() == 0 && held.elapsed() < hold {
            std::thread::sleep(Duration::from_millis(50));
        }
        let registry = telemetry.registry();
        println!("\n=== final metrics gauges ===");
        for (name, value) in [
            (
                "pier_comparisons_total",
                registry.counter("pier_comparisons_total", "", &[]).get() as f64,
            ),
            (
                "pier_matches_confirmed_total",
                registry
                    .counter("pier_matches_confirmed_total", "", &[])
                    .get() as f64,
            ),
            (
                "pier_budget_remaining",
                registry.gauge("pier_budget_remaining", "", &[]).get() as f64,
            ),
            (
                "pier_recall_estimate",
                registry.float_gauge("pier_recall_estimate", "", &[]).get(),
            ),
            (
                "pier_run_elapsed_seconds",
                registry
                    .float_gauge("pier_run_elapsed_seconds", "", &[])
                    .get(),
            ),
        ] {
            println!("{name:<28} {value}");
        }
        println!("scrapes served               {}", server.requests_served());
        server.shutdown();
    }

    if let Some(server) = &mut entity_server {
        // Hold contract for external scrapers (CI smoke): unlike the
        // single-scrape metrics endpoint, a validation pass makes several
        // queries back-to-back, so stay up until at least one request has
        // arrived *and* the client has been quiet for a second.
        let hold = Duration::from_secs(hold_metrics_secs);
        let held = Instant::now();
        let mut served = 0;
        let mut last_activity = Instant::now();
        while held.elapsed() < hold {
            let now_served = server.requests_served();
            if now_served != served {
                served = now_served;
                last_activity = Instant::now();
            }
            if served > 0 && last_activity.elapsed() >= Duration::from_secs(1) {
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        println!(
            "\nentity queries served        {}",
            server.requests_served()
        );
        server.shutdown();
    }
    if let Some(summary) = &report.entity_summary {
        let snapshot = entities.as_ref().expect("index configured").snapshot();
        let top_sizes: Vec<usize> = snapshot.largest.iter().map(|c| c.size).collect();
        println!("\n=== resolved entities ===");
        println!(
            "clusters          {} ({} profiles linked, {} singletons)",
            summary.clusters, summary.matched_profiles, summary.singletons
        );
        println!(
            "cluster sizes     max {} / mean {:.2}, top-5 {:?}",
            summary.max_size, summary.mean_size, top_sizes
        );
    }

    // Final snapshot: totals and per-phase latency histograms.
    let s = stats.snapshot();
    println!("\n=== final snapshot ===");
    println!("increments        {}", s.increments);
    println!("profiles          {}", s.profiles);
    println!(
        "blocks built      {} (purged {})",
        s.blocks_built, s.blocks_purged
    );
    println!(
        "ghosting          kept {} / dropped {} block entries",
        s.ghost_kept, s.ghost_dropped
    );
    println!(
        "comparisons       {} emitted, {} cf-filtered, {:.0}/s",
        s.comparisons_emitted,
        s.cf_filtered,
        s.comparisons_per_second()
    );
    println!("matches confirmed {}", s.matches_confirmed);
    if let Some(k) = s.current_k {
        println!("adaptive K        {k} after {} changes", s.k_changes);
    }
    for ph in &s.phases {
        if ph.count == 0 {
            continue;
        }
        println!(
            "phase {:8} n={:<5} total={:8.4}s p50={:.2e}s p95={:.2e}s p99={:.2e}s",
            ph.phase.name(),
            ph.count,
            ph.total_secs,
            ph.p50_secs,
            ph.p95_secs,
            ph.p99_secs,
        );
    }
    if !s.shards.is_empty() {
        println!("\n=== per-shard breakdown ===");
        for sh in &s.shards {
            println!(
                "shard {:<2} profiles={:<5} blocks={:<5} (purged {}) emitted={:<6} cf-filtered={}",
                sh.shard,
                sh.profiles,
                sh.blocks_built,
                sh.blocks_purged,
                sh.comparisons_emitted,
                sh.cf_filtered,
            );
        }
    }

    if !s.workers.is_empty() {
        println!("\n=== per-worker breakdown ===");
        for w in &s.workers {
            println!(
                "worker {:<2} chunks={:<5} classify={:8.4}s matches={}",
                w.worker, w.classify_chunks, w.classify_secs, w.matches_confirmed,
            );
        }
    }

    // The RuntimeReport tells the same story from the match-event side.
    println!("\n=== runtime report ===");
    println!("matches           {}", report.matches.len());
    println!("comparisons/s     {:.0}", report.comparisons_per_second());
    println!(
        "match workers     {} (per-worker comparisons {:?})",
        report.match_workers, report.worker_comparisons
    );
    for (label, v) in [
        ("latency p50", report.match_latency_p50()),
        ("latency p95", report.match_latency_p95()),
        ("latency p99", report.match_latency_p99()),
    ] {
        if let Some(d) = v {
            println!("{label}       {:.1} ms", d.as_secs_f64() * 1e3);
        }
    }
    if !report.dead_letters.is_empty() || report.worker_restarts > 0 || report.comparisons_shed > 0
    {
        println!("\n=== supervision ledger ===");
        println!("worker restarts   {}", report.worker_restarts);
        println!("comparisons shed  {}", report.comparisons_shed);
        for letter in &report.dead_letters {
            println!("dead letter       {letter:?}");
        }
    }
    let trajectory = report.progress_trajectory(&dataset.ground_truth);
    println!(
        "final PC          {:.3} ({} of {} true matches)",
        trajectory.pc(),
        trajectory.matches(),
        trajectory.total_matches()
    );
    if let Some(t) = trajectory.time_to_pc(0.5) {
        println!("time to PC=0.5    {t:.3}s");
    }

    if stage_a_stats {
        println!("\n=== stage-A structure stats ===");
        match report.stage_a {
            Some(st) => {
                println!(
                    "block slab        {} slots for {} blocks ({:.1}% occupied)",
                    st.slab_slots,
                    st.blocks,
                    if st.slab_slots > 0 {
                        100.0 * st.blocks as f64 / st.slab_slots as f64
                    } else {
                        100.0
                    }
                );
                println!("scratch slots     {}", st.scratch_slots);
                println!(
                    "scratch high-water {} neighbors in one arrival",
                    st.scratch_high_water
                );
            }
            None => println!("this run collected no stage-A stats"),
        }
    }

    if intern_stats {
        println!("\n=== intern stats ===");
        match report.dictionary {
            Some(d) => {
                println!("distinct tokens   {}", d.distinct_tokens);
                println!("token text        {} bytes", d.string_bytes);
                println!("occurrences       {}", d.token_occurrences);
                println!(
                    "est. bytes saved  {} (vs one owned String per occurrence)",
                    d.estimated_bytes_saved()
                );
            }
            None => println!("this driver did not intern tokens"),
        }
    }
}
