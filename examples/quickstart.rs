//! Quickstart: progressive + incremental ER on a generated movie corpus.
//!
//! Generates a small Clean-Clean movie dataset, replays it as a stream of
//! increments through the virtual-clock pipeline with the I-PES
//! prioritizer, and prints how pair completeness (PC) grows over time —
//! the core deliverable of the PIER paper — plus the entities the match
//! stream resolved into, via a live [`EntityIndex`].
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;

use pier::prelude::*;

fn main() {
    // 1. A Clean-Clean movie corpus with exact ground truth.
    let dataset = generate_movies(&MoviesConfig {
        seed: 42,
        source0_size: 1200,
        source1_size: 1000,
        matches: 950,
    });
    println!(
        "dataset `{}`: {} profiles, {} true matches",
        dataset.name,
        dataset.len(),
        dataset.ground_truth.len()
    );

    // 2. Stream it: 50 increments arriving at 10 increments/second.
    let plan = StreamPlan::streaming(50, 10.0);

    // 3. Run the PIER pipeline (I-PES prioritizer, cheap Jaccard matcher),
    //    folding every confirmed match into a live entity index.
    let matcher = JaccardMatcher::default();
    let sim = SimConfig {
        time_budget: 120.0,
        matcher_mode: MatcherMode::Real,
        ..SimConfig::default()
    };
    let index = EntityIndex::shared();
    let outcome = pier::sim::experiment::run_method_observed(
        Method::IPes,
        &dataset,
        &plan,
        &matcher,
        &sim,
        PierConfig::default(),
        Observer::new(Arc::new(ClusterObserver::new(Arc::clone(&index)))),
    );

    // 4. Report the progressive behaviour.
    println!("\n  time(s)    PC");
    for (t, pc) in outcome
        .trajectory
        .sample_over_time(outcome.final_time.max(1.0), 11)
    {
        println!("  {t:7.2}  {pc:.3}");
    }
    println!(
        "\nfinal: PC {:.3} after {} comparisons in {:.2} virtual seconds",
        outcome.pc(),
        outcome.comparisons,
        outcome.final_time
    );
    if let Some(t) = outcome.trajectory.time_to_pc(0.9) {
        println!("90% of all duplicates were found after {t:.2}s");
    }
    if let Some(t) = outcome.consumed_at {
        println!("stream fully consumed at {t:.2}s");
    }

    // 5. What did the stream resolve *to*? The entity index holds the
    //    transitive closure of every confirmed match.
    let summary = index.summary(dataset.len());
    let snapshot = index.snapshot();
    let top_sizes: Vec<usize> = snapshot.largest.iter().map(|c| c.size).collect();
    println!(
        "\nentities: {} clusters over {} matched profiles ({} singletons)",
        summary.clusters, summary.matched_profiles, summary.singletons
    );
    println!("largest clusters (top-5 sizes): {top_sizes:?}");
}
